//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent-serving window: real host threads execute requests
/// against per-worker contexts while one background thread compiles and
/// publishes translation snapshots through epoch-based reclamation
/// (paper section VII: retranslate-all under live load, no quiescence).
///
/// Determinism contract.  Per-request *observables* (return value,
/// output, faults) are interleaving- and thread-count-invariant: the
/// interpreter is the single semantic core, shared state is frozen at
/// beginConcurrentServing(), and each request runs on a private heap.
/// Per-request *virtual seconds* are not: they depend on which snapshot
/// a request observed, i.e. on the race between serving and compilation
/// that this mode exists to exercise.  Consequently serve() never
/// touches the virtual clock, metrics, or tracer -- integer totals fold
/// into the registry once, at endConcurrentServing() -- and CI gates
/// only the invariant side (see ci/check.sh CHECK_SERVER).
///
//===----------------------------------------------------------------------===//

#include "vm/Server.h"

#include "jit/ParallelRetranslate.h"

#include "obs/Observability.h"
#include "runtime/ValueOps.h"
#include "support/Assert.h"

#include <algorithm>
#include <cmath>

using namespace jumpstart;
using namespace jumpstart::vm;

uint32_t Server::effectiveMaxInFlight() const {
  if (Config.Admission.MaxInFlight)
    return Config.Admission.MaxInFlight;
  return 2 * std::max(1u, Config.ServeWorkers);
}

void Server::publishSnapshot() {
  Publisher->publish(jit::TransSnapshot::capture(TheJit, ++SnapVersion));
}

void Server::beginConcurrentServing() {
  alwaysAssert(Started, "beginConcurrentServing() before startup()");
  alwaysAssert(!Serving.load(std::memory_order_acquire),
               "beginConcurrentServing() called twice");

  // Freeze the data plane: load every unit and build every class layout
  // now, so request threads never mutate shared lazy state (and never
  // race on who pays a first-touch charge).  The unit-load cost is
  // charged here, spread across all cores like the consumer preload.
  double PreloadUnitsCost = 0;
  for (size_t U = 0; U < R.numUnits(); ++U)
    if (LoadedUnits.insert(static_cast<uint32_t>(U)).second)
      PreloadUnitsCost += Config.UnitLoadCost;
  for (size_t C = 0; C < R.numClasses(); ++C)
    Classes.layout(bc::ClassId(static_cast<uint32_t>(C)));

  CurStats = ServeStats();
  CurStats.PreloadSeconds =
      unitsToSeconds(PreloadUnitsCost) / std::max(1u, Config.Cores);
  if (Obs) {
    Obs->Trace.completeSpan("serve-preload", "phase", ServerTrack,
                            Obs->Clock.now(), CurStats.PreloadSeconds);
    Obs->Clock.advance(CurStats.PreloadSeconds);
    Obs->Trace.instant("begin-concurrent-serving", "phase", ServerTrack);
  }

  Domain = std::make_unique<support::EpochDomain>();
  Publisher = std::make_unique<jit::SnapshotPublisher>(*Domain);
  SnapVersion = 0;
  uint32_t Workers = std::max(1u, Config.ServeWorkers);
  ServeContexts.clear();
  for (uint32_t I = 0; I < Workers; ++I) {
    auto Ctx = std::make_unique<ExecContext>(R, Classes, Config.Interp);
    // Uninstrumented: no profiling hooks, so request threads never call
    // into the JIT.  InstrCounts still accumulate (the interpreter
    // counts unconditionally), which is all the cost model needs.
    Ctx->Slot = Domain->acquireSlot();
    ServeContexts.push_back(std::move(Ctx));
  }
  {
    support::MutexLock Lock(ServeM);
    FreeContexts.clear();
    for (auto &Ctx : ServeContexts)
      FreeContexts.push_back(Ctx.get());
    InFlightCount = 0;
    SubmittedCount = ServedCount = ShedCount = 0;
  }
  BaseRequests = Requests;
  publishSnapshot();
  Serving.store(true, std::memory_order_release);
}

RequestResult Server::serve(bc::FuncId F,
                            const std::vector<runtime::Value> &Args,
                            uint64_t RequestIndex) {
  alwaysAssert(Serving.load(std::memory_order_acquire),
               "serve() outside a concurrent-serving window");
  ExecContext *Ctx = nullptr;
  {
    support::MutexLock Lock(ServeM);
    ++SubmittedCount;
    while (InFlightCount >= effectiveMaxInFlight()) {
      if (Config.Admission.OnOverload == AdmissionConfig::Policy::Shed) {
        ++ShedCount;
        RequestResult Res;
        Res.Shed = true;
        return Res;
      }
      ServeCV.wait(Lock);
    }
    ++InFlightCount;
    // Admitted; wait for a context.  Bounded by MaxInFlight, so with
    // the Block policy this is the closed-loop client queue.
    while (FreeContexts.empty())
      ServeCV.wait(Lock);
    Ctx = FreeContexts.back();
    FreeContexts.pop_back();
  }

  RequestResult Res =
      executeOnContext(*Ctx, F, Args, BaseRequests + RequestIndex + 1);

  {
    support::MutexLock Lock(ServeM);
    FreeContexts.push_back(Ctx);
    --InFlightCount;
    ++ServedCount;
  }
  ServeCV.notifyAll();
  return Res;
}

RequestResult
Server::executeOnContext(ExecContext &Ctx, bc::FuncId F,
                         const std::vector<runtime::Value> &Args,
                         uint64_t DecayRequests) {
  // Pin an epoch for the whole request: the snapshot pointer stays
  // valid until we unpin, however many publications happen meanwhile.
  support::EpochGuard Guard(*Domain, *Ctx.Slot);
  const jit::TransSnapshot *Snap = Publisher->current();
  alwaysAssert(Snap, "serving without a published snapshot");

  Ctx.InstrCounts.assign(R.numFuncs(), 0);
  interp::InterpResult Result = Ctx.Interp->call(F, Args);

  RequestResult Res;
  // Render before the heap reset: the return value may point into it.
  Res.Obs.Ret = runtime::toString(Result.Ret);
  Res.Obs.Output = Ctx.Output;
  Res.Obs.Faults = Result.Faults;
  Res.Obs.Ok = Result.Ok;
  Ctx.Faults += Result.Faults;
  ++Ctx.Served;
  Ctx.Heap.reset();
  Ctx.Output.clear();

  // Cost the request against the pinned snapshot.  No unit-load term:
  // the data plane was fully preloaded at beginConcurrentServing().
  double Units = 0;
  for (uint32_t FuncRaw = 0; FuncRaw < Ctx.InstrCounts.size(); ++FuncRaw) {
    if (Ctx.InstrCounts[FuncRaw] == 0)
      continue;
    Units += static_cast<double>(Ctx.InstrCounts[FuncRaw]) *
             Snap->CostPerBytecode[FuncRaw];
  }
  // Runtime-warmup friction decays by the caller-assigned request
  // index, not arrival order, so it is interleaving-independent.
  if (Config.RuntimeWarmupPenalty > 0 && Config.RuntimeWarmupTau > 0) {
    double Decay = std::exp(-static_cast<double>(DecayRequests) /
                            Config.RuntimeWarmupTau);
    Units *= 1.0 + Config.RuntimeWarmupPenalty * Decay;
  }
  Res.Seconds = unitsToSeconds(Units);
  return Res;
}

double Server::runBackgroundJitWork(double Seconds) {
  alwaysAssert(Serving.load(std::memory_order_acquire),
               "runBackgroundJitWork() outside a concurrent-serving window");
  // Host-parallel prelowering: lower queued units on the compile pool so
  // the serial drain below mostly installs scratch.  Placement order and
  // virtual cost accounting are untouched -- translations, spans and
  // digests stay byte-identical to the pool-less path.
  if (Config.CompilePool && TheJit.hasPendingWork())
    jit::ParallelRetranslate::prelowerPending(TheJit, Config.CompilePool);
  double Budget = Seconds * Config.JitWorkerCores *
                  Config.UnitsPerCorePerSecond;
  double Consumed = TheJit.runJitWork(Budget);
  double Wall =
      Consumed / (Config.JitWorkerCores * Config.UnitsPerCorePerSecond);
  // This thread is the window's sole observability writer; the clock
  // tracks compilation progress only (request threads never touch it).
  if (Obs)
    Obs->Clock.advance(Wall);
  if (Consumed > 0)
    publishSnapshot();
  return Wall;
}

uint32_t Server::inFlight() {
  support::MutexLock Lock(ServeM);
  return InFlightCount;
}

ServeStats Server::endConcurrentServing() {
  alwaysAssert(Serving.load(std::memory_order_acquire),
               "endConcurrentServing() without beginConcurrentServing()");
  {
    support::MutexLock Lock(ServeM);
    alwaysAssert(InFlightCount == 0,
                 "endConcurrentServing() with requests in flight");
    CurStats.Submitted = SubmittedCount;
    CurStats.Served = ServedCount;
    CurStats.Shed = ShedCount;
    FreeContexts.clear();
  }
  Serving.store(false, std::memory_order_release);

  for (auto &Ctx : ServeContexts) {
    CurStats.Faults += Ctx->Faults;
    Domain->releaseSlot(Ctx->Slot);
    Ctx->Slot = nullptr;
  }
  ServeContexts.clear();

  CurStats.SnapshotsPublished = Publisher->published();
  // Destroy the publisher first (frees the live snapshot), then drain
  // every retired one; with all slots released nothing can be pinned.
  Publisher.reset();
  Domain->reclaimAll();
  CurStats.SnapshotsReclaimed = Domain->freedCount();
  Domain.reset();

  alwaysAssert(CurStats.Submitted == CurStats.Served + CurStats.Shed,
               "lost request: Submitted != Served + Shed");

  Requests += CurStats.Served;
  Faults += CurStats.Faults;
  if (Obs) {
    obs::LabelSet ByServer{{"server", Config.Name}};
    Obs->Metrics.counter("jumpstart.server.requests", ByServer)
        .inc(CurStats.Served);
    if (CurStats.Faults)
      Obs->Metrics.counter("jumpstart.server.faults", ByServer)
          .inc(CurStats.Faults);
    // Registered unconditionally so the export layout does not depend
    // on whether overload happened.
    Obs->Metrics.counter("jumpstart.server.shed", ByServer)
        .inc(CurStats.Shed);
    Obs->Trace.instant("end-concurrent-serving", "phase", ServerTrack,
                       {"served=" + std::to_string(CurStats.Served),
                        "shed=" + std::to_string(CurStats.Shed),
                        "snapshots=" +
                            std::to_string(CurStats.SnapshotsPublished)});
  }
  return CurStats;
}
