//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "vm/Server.h"

#include "jit/ParallelRetranslate.h"
#include "obs/Observability.h"
#include "runtime/ValueOps.h"
#include "support/Assert.h"
#include "support/Hashing.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cmath>

using namespace jumpstart;
using namespace jumpstart::vm;

namespace jumpstart::vm {

/// Extends the JIT's profiling hooks with server concerns: first-touch
/// unit loading and feeding function-entry events to the tiering policy.
/// Serial path only -- concurrent contexts run uninstrumented.
class ServerHooks : public jit::JitProfilingHooks {
public:
  ServerHooks(Server &S, jit::Jit &J)
      : jit::JitProfilingHooks(J), S(S) {}

  void onFuncEnter(bc::FuncId Callee, bc::FuncId Caller,
                   const runtime::Value *Args, uint32_t NumArgs) override {
    S.Serial->PendingLoadUnits += S.loadUnitsFor(Callee);
    S.TheJit.onFuncEntered(Callee);
    jit::JitProfilingHooks::onFuncEnter(Callee, Caller, Args, NumArgs);
  }

private:
  Server &S;
};

} // namespace jumpstart::vm

Server::ExecContext::ExecContext(const bc::Repo &R,
                                 runtime::ClassTable &Classes,
                                 const interp::InterpOptions &Opts) {
  Interp = std::make_unique<interp::Interpreter>(
      R, Classes, Heap, runtime::BuiltinTable::standard(), Opts);
  Interp->setInstrCounts(&InstrCounts);
  Interp->setOutput(&Output);
}

Server::Server(const bc::Repo &R, ServerConfig Config, uint64_t Seed)
    : R(R), Config(std::move(Config)), Classes(R),
      TheJit(R, this->Config.Jit) {
  (void)Seed;
  Serial =
      std::make_unique<ExecContext>(R, Classes, this->Config.Interp);
  Hooks = std::make_unique<ServerHooks>(*this, TheJit);
  Serial->Interp->setCallbacks(Hooks.get());

  if (this->Config.Obs) {
    Obs = this->Config.Obs;
    ServerTrack = Obs->Trace.allocTrack(this->Config.Name);
    JitTrack = Obs->Trace.allocTrack(this->Config.Name + "/jit");
    // JIT job costs convert to wall time at the worker pool's aggregate
    // rate.
    double PoolRate = this->Config.UnitsPerCorePerSecond *
                      std::max(1u, this->Config.JitWorkerCores);
    TheJit.setObservability(Obs, 1.0 / PoolRate, JitTrack);
  }
}

Server::~Server() {
  alwaysAssert(!Serving.load(std::memory_order_acquire),
               "destroying a server inside a concurrent-serving window");
}

uint64_t Server::repoFingerprint(const bc::Repo &R) {
  uint64_t H = 0x5e4a9b1cull;
  H = hashCombine(H, R.numFuncs());
  H = hashCombine(H, R.numClasses());
  H = hashCombine(H, R.numStrings());
  for (const bc::Function &F : R.funcs()) {
    H = hashCombine(H, F.Code.size());
    if (!F.Code.empty())
      H = hashCombine(H, static_cast<uint64_t>(F.Code[0].Opcode) ^
                             static_cast<uint64_t>(F.Code.back().ImmA));
  }
  return H;
}

support::Status Server::installPackage(const profile::ProfilePackage &Pkg) {
  alwaysAssert(!Started, "installPackage() must precede startup()");
  if (Pkg.RepoFingerprint != 0 &&
      Pkg.RepoFingerprint != repoFingerprint(R))
    return support::errorStatus(
        support::StatusCode::FingerprintMismatch,
        "package repo fingerprint %llx does not match this server",
        static_cast<unsigned long long>(Pkg.RepoFingerprint));
  Package = Pkg;
  PackageBytes = Pkg.serialize().size();
  if (Obs)
    Obs->Trace.instant(
        "install-package", "package", ServerTrack,
        {"bytes=" + std::to_string(PackageBytes),
         "seeder=" + std::to_string(Pkg.SeederId)});
  if (Config.ReorderProperties && !Package->Opt.PropAccessCounts.empty()) {
    if (Config.UseAffinityPropOrder && !Package->Opt.PropAffinity.empty())
      Classes.enableAffinityReordering(&Package->Opt.PropAccessCounts,
                                       &Package->Opt.PropAffinity);
    else
      Classes.enablePropReordering(&Package->Opt.PropAccessCounts);
  }
  return support::Status::okStatus();
}

double Server::loadUnitsFor(bc::FuncId F) {
  uint32_t Unit = R.func(F).Unit.raw();
  if (!LoadedUnits.insert(Unit).second)
    return 0;
  return Config.UnitLoadCost;
}

RequestResult Server::executeRequest(bc::FuncId F,
                                     const std::vector<runtime::Value> &Args) {
  alwaysAssert(!Serving.load(std::memory_order_acquire),
               "executeRequest() is the serial path; use serve() inside a "
               "concurrent-serving window");
  ExecContext &Ctx = *Serial;
  size_t SpanIndex = 0;
  if (Obs)
    SpanIndex = Obs->Trace.beginSpan("request", "request", ServerTrack);
  Ctx.PendingLoadUnits = 0;
  Ctx.InstrCounts.assign(R.numFuncs(), 0);
  interp::InterpResult Result = Ctx.Interp->call(F, Args);
  RequestResult Res;
  // Render before the heap reset: the return value may point into it.
  Res.Obs.Ret = runtime::toString(Result.Ret);
  Res.Obs.Output = Ctx.Output;
  Res.Obs.Faults = Result.Faults;
  Res.Obs.Ok = Result.Ok;
  Faults += Result.Faults;
  ++Requests;
  TheJit.onRequestFinished();
  Ctx.Heap.reset();
  Ctx.Output.clear();

  double Units = Ctx.PendingLoadUnits;
  for (uint32_t FuncRaw = 0; FuncRaw < Ctx.InstrCounts.size(); ++FuncRaw) {
    if (Ctx.InstrCounts[FuncRaw] == 0)
      continue;
    Units += static_cast<double>(Ctx.InstrCounts[FuncRaw]) *
             TheJit.execCostPerBytecode(bc::FuncId(FuncRaw));
  }
  // Runtime-warmup friction (see ServerConfig::RuntimeWarmupPenalty).
  if (Config.RuntimeWarmupPenalty > 0 && Config.RuntimeWarmupTau > 0) {
    double Decay = std::exp(-static_cast<double>(Requests) /
                            Config.RuntimeWarmupTau);
    Units *= 1.0 + Config.RuntimeWarmupPenalty * Decay;
  }
  double Seconds = unitsToSeconds(Units);
  if (Obs) {
    // The request's CPU time is what moves this server's virtual clock.
    Obs->Clock.advance(Seconds);
    Obs->Trace.endSpan(SpanIndex);
    obs::LabelSet ByServer{{"server", Config.Name}};
    Obs->Metrics.counter("jumpstart.server.requests", ByServer).inc();
    if (Result.Faults)
      Obs->Metrics.counter("jumpstart.server.faults", ByServer)
          .inc(Result.Faults);
    Obs->Metrics
        .histogram("jumpstart.server.request_seconds", ByServer,
                   obs::latencyBucketsSeconds())
        .observe(Seconds);
  }
  Res.Seconds = Seconds;
  return Res;
}

double Server::grantJitTime(double Seconds) {
  alwaysAssert(!Serving.load(std::memory_order_acquire),
               "grantJitTime() is the serial path; use "
               "runBackgroundJitWork() inside a concurrent-serving window");
  double Budget = Seconds * Config.JitWorkerCores *
                  Config.UnitsPerCorePerSecond;
  double Consumed = TheJit.runJitWork(Budget);
  double Wall =
      Consumed / (Config.JitWorkerCores * Config.UnitsPerCorePerSecond);
  // Background compilation moves the clock too, so JIT job spans land on
  // a timeline even when no tick loop is driving it (e.g. runSeeder).
  if (Obs)
    Obs->Clock.advance(Wall);
  return Wall;
}

void Server::attachCallbacks(interp::ExecCallbacks *CB) {
  Serial->Interp->setCallbacks(CB ? CB : Hooks.get());
}

void Server::seedInlineCaches() {
  if (!Config.Jit.ProvenGuardElision || !Config.Jit.Facts)
    return;
  for (const jit::ProvenFacts::ICSeed &S : Config.Jit.Facts->ICSeeds) {
    bc::FuncId F(S.Func);
    if (F.raw() >= R.numFuncs() || S.Pc >= R.func(F).Code.size() ||
        S.Cls >= R.numClasses())
      continue;
    const bc::Instr &In = R.func(F).Code[S.Pc];
    const runtime::ClassLayout &L = Classes.layout(bc::ClassId(S.Cls));
    // Seed exactly what the first successful dynamic lookup would cache;
    // an unresolvable site (missing method/property) caches nothing
    // dynamically, so it must stay cold here too.
    uint64_t Payload;
    if (S.K == jit::ProvenFacts::ICSeed::Kind::Call) {
      bc::FuncId M = L.findMethod(In.strImm());
      if (!M.valid())
        continue;
      Payload = M.raw();
    } else {
      int64_t Slot = L.findSlot(In.strImm());
      if (Slot < 0)
        continue;
      Payload = static_cast<uint64_t>(Slot);
    }
    if (Serial->Interp->seedIC(F, S.Pc, &L, Payload))
      ++ICsSeeded;
  }
  if (Obs && ICsSeeded)
    Obs->Metrics
        .counter("jumpstart.interp.ics_seeded", {{"server", Config.Name}})
        .inc(ICsSeeded);
}

InitStats Server::startup() {
  alwaysAssert(!Started, "startup() called twice");
  Started = true;
  InitStats Stats;
  seedInlineCaches();

  // The startup span covers the whole initialization; phase sub-spans
  // nest under it.  The clock ends exactly InitStats::TotalSeconds past
  // its entry value (warmup requests advance it themselves; the final
  // set() squares the parallel-warmup discount with the trace).
  double ClockStart = Obs ? Obs->Clock.now() : 0;
  size_t StartupSpan = 0;
  if (Obs)
    StartupSpan = Obs->Trace.beginSpan("startup", "phase", ServerTrack);
  auto Finish = [&](InitStats &S) {
    if (Obs) {
      Obs->Clock.set(ClockStart + S.TotalSeconds);
      Obs->Trace.endSpan(StartupSpan);
      obs::LabelSet ByServer{{"server", Config.Name}};
      Obs->Metrics.gauge("jumpstart.server.init_seconds", ByServer)
          .set(S.TotalSeconds);
      Obs->Metrics
          .counter("jumpstart.server.boots",
                   {{"jumpstart", S.UsedJumpStart ? "yes" : "no"}})
          .inc();
    }
    return S;
  };

  auto RunWarmupRequests = [&](bool Parallel) {
    double Total = 0;
    for (uint32_t Raw : Config.WarmupEndpoints) {
      std::vector<runtime::Value> Args{runtime::Value::integer(0)};
      Total += executeRequest(bc::FuncId(Raw), Args).Seconds;
    }
    if (Parallel && Config.Cores > 1)
      Total /= static_cast<double>(Config.Cores);
    return Total;
  };

  if (!Package) {
    // Figure 3a: initialize, then run warmup requests *sequentially*
    // (their metadata-load order matters for locality; paper
    // section VII-A), then start serving.
    {
      obs::ScopedSpan Span(Obs ? &Obs->Trace : nullptr, "warmup-requests",
                           "phase", ServerTrack);
      Stats.WarmupRequestSeconds = RunWarmupRequests(/*Parallel=*/false);
    }
    Stats.TotalSeconds = Stats.WarmupRequestSeconds;
    return Finish(Stats);
  }

  // Figure 3c: deserialize the package, preload metadata, JIT all
  // optimized code using every core, then run warmup requests in
  // parallel.
  Stats.UsedJumpStart = true;
  Stats.DeserializeSeconds = unitsToSeconds(
      static_cast<double>(PackageBytes) * Config.DeserializeCostPerByte);
  if (Obs) {
    Obs->Trace.completeSpan("deserialize-package", "package", ServerTrack,
                            Obs->Clock.now(), Stats.DeserializeSeconds);
    Obs->Clock.advance(Stats.DeserializeSeconds);
  }

  // Category-1 preload: units, classes and strings, in package order.
  double PreloadUnitsCost = 0;
  for (uint32_t Unit : Package->Preload.Units)
    if (LoadedUnits.insert(Unit).second)
      PreloadUnitsCost += Config.UnitLoadCost;
  for (uint32_t Cls : Package->Preload.Classes)
    if (Cls < R.numClasses())
      Classes.layout(bc::ClassId(Cls));
  // Preloading is parallel across cores (it is what enables the parallel
  // warmup requests; paper section VII-A).
  Stats.PreloadSeconds =
      unitsToSeconds(PreloadUnitsCost) / Config.Cores;
  if (Obs) {
    Obs->Trace.completeSpan("preload-metadata", "phase", ServerTrack,
                            Obs->Clock.now(), Stats.PreloadSeconds);
    Obs->Clock.advance(Stats.PreloadSeconds);
  }

  // Precompile every optimized translation before serving.  The clock
  // advances with each work slice so JIT job spans spread across the
  // precompile window.  The virtual wall-cost divides by the *modeled*
  // parallelism (JitConfig::Parallelism, default: every core -- paper
  // Figure 3c); Config.CompilePool only shrinks host wall-clock and
  // never appears in this arithmetic.
  uint32_t VirtK = std::max(
      1u, Config.Jit.Parallelism
              ? std::min(Config.Jit.Parallelism, Config.Cores)
              : Config.Cores);
  double PrecompileUnits = 0;
  {
    obs::ScopedSpan Span(Obs ? &Obs->Trace : nullptr, "consumer-precompile",
                         "phase", ServerTrack);
    support::Status Installed = TheJit.installPackageProfiles(*Package);
    alwaysAssert(Installed.ok(),
                 "package passed lint but failed profile install");
    jit::ParallelRetranslate Driver(TheJit, Config.CompilePool);
    jit::RetranslateStats RStats =
        Driver.run(16.0 * Config.UnitsPerCorePerSecond, [&](double Step) {
          PrecompileUnits += Step;
          if (Obs)
            Obs->Clock.advance(unitsToSeconds(Step) / VirtK);
        });
    (void)RStats;
  }
  Stats.PrecompileSeconds = unitsToSeconds(PrecompileUnits) / VirtK;

  {
    obs::ScopedSpan Span(Obs ? &Obs->Trace : nullptr, "warmup-requests",
                         "phase", ServerTrack);
    Stats.WarmupRequestSeconds = RunWarmupRequests(/*Parallel=*/true);
  }
  Stats.TotalSeconds = Stats.DeserializeSeconds + Stats.PreloadSeconds +
                       Stats.PrecompileSeconds +
                       Stats.WarmupRequestSeconds;
  return Finish(Stats);
}

profile::ProfilePackage Server::buildSeederPackage(uint32_t Region,
                                                   uint32_t Bucket,
                                                   uint64_t SeederId) const {
  return TheJit.buildPackage(Region, Bucket, SeederId, repoFingerprint(R));
}
