//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "core/PackageStore.h"

#include "support/Assert.h"

using namespace jumpstart;
using namespace jumpstart::core;

uint32_t PackageStore::publish(uint32_t Region, uint32_t Bucket,
                               std::vector<uint8_t> Blob) {
  Shelf &S = Shelves[key(Region, Bucket)];
  S.Blobs.push_back(std::move(Blob));
  S.IsQuarantined.push_back(false);
  return static_cast<uint32_t>(S.Blobs.size() - 1);
}

const PackageStore::Shelf *PackageStore::find(uint32_t Region,
                                              uint32_t Bucket) const {
  auto It = Shelves.find(key(Region, Bucket));
  return It == Shelves.end() ? nullptr : &It->second;
}

std::optional<PackageStore::Selection>
PackageStore::pickRandom(uint32_t Region, uint32_t Bucket, Rng &R) const {
  const Shelf *S = find(Region, Bucket);
  if (!S)
    return std::nullopt;
  std::vector<uint32_t> Alive;
  for (uint32_t I = 0; I < S->Blobs.size(); ++I)
    if (!S->IsQuarantined[I])
      Alive.push_back(I);
  if (Alive.empty())
    return std::nullopt;
  uint32_t Index = Alive[R.nextBelow(Alive.size())];
  return Selection{Index, &S->Blobs[Index]};
}

size_t PackageStore::available(uint32_t Region, uint32_t Bucket) const {
  const Shelf *S = find(Region, Bucket);
  if (!S)
    return 0;
  size_t N = 0;
  for (bool Q : S->IsQuarantined)
    if (!Q)
      ++N;
  return N;
}

void PackageStore::quarantine(uint32_t Region, uint32_t Bucket,
                              uint32_t Index) {
  auto It = Shelves.find(key(Region, Bucket));
  alwaysAssert(It != Shelves.end(), "quarantine of unknown shelf");
  Shelf &S = It->second;
  alwaysAssert(Index < S.Blobs.size(), "quarantine of unknown package");
  if (S.IsQuarantined[Index])
    return;
  S.IsQuarantined[Index] = true;
  Quarantined.push_back(S.Blobs[Index]);
}

void PackageStore::corrupt(uint32_t Region, uint32_t Bucket, uint32_t Index,
                           Rng &R, uint32_t Flips) {
  auto It = Shelves.find(key(Region, Bucket));
  alwaysAssert(It != Shelves.end(), "corrupt() of unknown shelf");
  Shelf &S = It->second;
  alwaysAssert(Index < S.Blobs.size(), "corrupt() of unknown package");
  std::vector<uint8_t> &Blob = S.Blobs[Index];
  if (Blob.empty())
    return;
  for (uint32_t I = 0; I < Flips; ++I) {
    size_t At = R.nextBelow(Blob.size());
    Blob[At] ^= static_cast<uint8_t>(1 + R.nextBelow(255));
  }
}
