//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "core/PackageStore.h"

using namespace jumpstart;
using namespace jumpstart::core;
using support::Status;
using support::StatusCode;

uint32_t PackageStore::publish(uint32_t Region, uint32_t Bucket,
                               std::vector<uint8_t> Blob) {
  Shelf &S = Shelves[key(Region, Bucket)];
  S.Blobs.push_back(std::move(Blob));
  S.IsQuarantined.push_back(false);
  return static_cast<uint32_t>(S.Blobs.size() - 1);
}

const PackageStore::Shelf *PackageStore::find(uint32_t Region,
                                              uint32_t Bucket) const {
  auto It = Shelves.find(key(Region, Bucket));
  return It == Shelves.end() ? nullptr : &It->second;
}

Status PackageStore::pickRandom(uint32_t Region, uint32_t Bucket, Rng &R,
                                Selection &Out) const {
  const Shelf *S = find(Region, Bucket);
  if (S) {
    std::vector<uint32_t> Alive;
    for (uint32_t I = 0; I < S->Blobs.size(); ++I)
      if (!S->IsQuarantined[I])
        Alive.push_back(I);
    if (!Alive.empty()) {
      Out.Index = Alive[R.nextBelow(Alive.size())];
      Out.Blob = &S->Blobs[Out.Index];
      return Status::okStatus();
    }
  }
  return Status::error(StatusCode::Unavailable,
                       "no suitable profile-data package available");
}

size_t PackageStore::available(uint32_t Region, uint32_t Bucket) const {
  const Shelf *S = find(Region, Bucket);
  if (!S)
    return 0;
  size_t N = 0;
  for (bool Q : S->IsQuarantined)
    if (!Q)
      ++N;
  return N;
}

Status PackageStore::quarantine(uint32_t Region, uint32_t Bucket,
                                uint32_t Index) {
  auto It = Shelves.find(key(Region, Bucket));
  if (It == Shelves.end())
    return support::errorStatus(StatusCode::NotFound,
                                "quarantine of unknown shelf (r%u,b%u)",
                                Region, Bucket);
  Shelf &S = It->second;
  if (Index >= S.Blobs.size())
    return support::errorStatus(StatusCode::NotFound,
                                "quarantine of unknown package #%u", Index);
  if (!S.IsQuarantined[Index]) {
    S.IsQuarantined[Index] = true;
    Quarantined.push_back(S.Blobs[Index]);
  }
  return Status::okStatus();
}

Status PackageStore::corrupt(uint32_t Region, uint32_t Bucket,
                             uint32_t Index, Rng &R, uint32_t Flips) {
  auto It = Shelves.find(key(Region, Bucket));
  if (It == Shelves.end())
    return support::errorStatus(StatusCode::NotFound,
                                "corrupt() of unknown shelf (r%u,b%u)",
                                Region, Bucket);
  Shelf &S = It->second;
  if (Index >= S.Blobs.size())
    return support::errorStatus(StatusCode::NotFound,
                                "corrupt() of unknown package #%u", Index);
  std::vector<uint8_t> &Blob = S.Blobs[Index];
  for (uint32_t I = 0; I < Flips && !Blob.empty(); ++I) {
    size_t At = R.nextBelow(Blob.size());
    Blob[At] ^= static_cast<uint8_t>(1 + R.nextBelow(255));
  }
  return Status::okStatus();
}
