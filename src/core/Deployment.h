//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Full-site push simulation: the C1/C2/C3 phased deployment of paper
/// section II-C, with Jump-Start woven in as deployed at Facebook --
/// profile data collected by seeders in the C2 phase powers the consumers
/// restarted in C3.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_CORE_DEPLOYMENT_H
#define JUMPSTART_CORE_DEPLOYMENT_H

#include "core/Consumer.h"
#include "core/Seeder.h"

namespace jumpstart::support {
class ThreadPool;
}

namespace jumpstart::core {

/// Push-simulation parameters.  A real fleet has thousands of servers per
/// (region, bucket); the simulation boots a configurable sample of real
/// VMs and treats the rest statistically.
struct DeploymentParams {
  uint32_t Regions = 1;
  /// Buckets simulated per region (the paper's fleet uses all 10;
  /// simulating fewer keeps harness runtimes short).
  uint32_t Buckets = 2;
  /// Seeders per (region, bucket) -- "use of multiple, randomized
  /// profiles" (section VI-A technique 2).
  uint32_t SeedersPerPair = 2;
  uint32_t SeederRequests = 350;
  /// Consumers actually booted per (region, bucket).
  uint32_t ConsumerSamplesPerPair = 1;
  uint64_t Seed = 5;
  /// Host thread pool sharding the independent C2 seeder and C3 consumer
  /// simulations (null: serial).  Deterministic: every per-server seed is
  /// drawn serially in loop order before the fan-out, each simulation
  /// records into a task-local context, and packages/metrics/logs are
  /// folded back in loop order after the join -- so the report and the
  /// published packages are identical for any worker count.  With a pool,
  /// workflow-level metrics merge into \p Obs but workflow trace spans
  /// are task-local and dropped (phase spans still record); Chaos hooks,
  /// if any, must be thread-safe.
  support::ThreadPool *Pool = nullptr;
  /// After C2, additionally fold every shelf's published packages into
  /// one multi-seeder package (PackageManager::merge) -- "use of
  /// multiple, randomized profiles" collapsed into one release blob.
  /// The merged package is published onto the same shelf, so C3
  /// consumers can pick it like any other.  Folding happens in
  /// (region, bucket) loop order after the (order-insensitive) merge,
  /// so the shelf contents stay identical for any worker count.
  bool PublishMergedPackage = false;
};

/// Summary of one site push.
struct DeploymentReport {
  // C1: canary.
  bool CanaryHealthy = false;
  // C2: seeders.
  uint32_t SeedersRun = 0;
  uint32_t PackagesPublished = 0;
  uint32_t SeederFailures = 0;
  /// Multi-seeder merges published (PublishMergedPackage only).
  uint32_t MergedPackages = 0;
  // C3: consumers.
  uint32_t ConsumersBooted = 0;
  uint32_t ConsumersUsedJumpStart = 0;
  double MeanConsumerInitSeconds = 0;
  std::vector<std::string> Log;
};

/// Simulates one complete push.  Packages land in \p Manager (so a later
/// push can reuse it or a test can inspect it).  \p Obs (optional)
/// receives push-phase spans (C1 canary / C2 seeders / C3 consumers) on a
/// "deployment" track plus everything the seeder and consumer workflows
/// record.
DeploymentReport simulateDeployment(const fleet::Workload &W,
                                    const fleet::TrafficModel &Traffic,
                                    const vm::ServerConfig &BaseConfig,
                                    const JumpStartOptions &Opts,
                                    PackageManager &Manager,
                                    const DeploymentParams &P,
                                    const ChaosHooks *Chaos = nullptr,
                                    obs::Observability *Obs = nullptr);

} // namespace jumpstart::core

#endif // JUMPSTART_CORE_DEPLOYMENT_H
