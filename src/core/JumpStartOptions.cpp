//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "core/JumpStartOptions.h"

#include "support/Assert.h"
#include "support/StringUtil.h"

#include <cstdlib>

using namespace jumpstart;
using namespace jumpstart::core;
using support::Status;
using support::StatusCode;

std::vector<std::string> JumpStartOptions::validate() const {
  std::vector<std::string> Diags;
  if (AffinityPropertyOrder && !PropertyReordering)
    Diags.push_back("affinity_property_order requires property_reordering "
                    "(affinity ordering is a refinement of the hotness "
                    "reordering machinery)");
  if (Enabled && MaxConsumerAttempts == 0)
    Diags.push_back("max_consumer_attempts must be >= 1 when Jump-Start is "
                    "enabled (consumers need at least one attempt)");
  if (MaxValidationFaultRate < 0 || MaxValidationFaultRate > 1)
    Diags.push_back(strFormat(
        "max_validation_fault_rate must be in [0, 1], got %g",
        MaxValidationFaultRate));
  if (Enabled && ValidationRequests == 0 && MaxValidationFaultRate < 1)
    Diags.push_back("validation_requests=0 disables behavioural validation "
                    "but max_validation_fault_rate still expects it; set "
                    "the rate to 1 to acknowledge");
  return Diags;
}

namespace {

Status parseBool(std::string_view Key, std::string_view Value, bool &Out) {
  if (Value == "true" || Value == "1" || Value == "yes" || Value == "on") {
    Out = true;
    return Status::okStatus();
  }
  if (Value == "false" || Value == "0" || Value == "no" || Value == "off") {
    Out = false;
    return Status::okStatus();
  }
  return support::errorStatus(
      StatusCode::InvalidArgument, "%.*s: expected a boolean, got \"%.*s\"",
      static_cast<int>(Key.size()), Key.data(),
      static_cast<int>(Value.size()), Value.data());
}

template <typename UIntT>
Status parseUInt(std::string_view Key, std::string_view Value, UIntT &Out) {
  std::string S(Value);
  char *End = nullptr;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (S.empty() || End != S.c_str() + S.size())
    return support::errorStatus(
        StatusCode::InvalidArgument,
        "%.*s: expected an unsigned integer, got \"%s\"",
        static_cast<int>(Key.size()), Key.data(), S.c_str());
  Out = static_cast<UIntT>(V);
  return Status::okStatus();
}

Status parseDouble(std::string_view Key, std::string_view Value,
                   double &Out) {
  std::string S(Value);
  char *End = nullptr;
  double V = std::strtod(S.c_str(), &End);
  if (S.empty() || End != S.c_str() + S.size())
    return support::errorStatus(StatusCode::InvalidArgument,
                                "%.*s: expected a number, got \"%s\"",
                                static_cast<int>(Key.size()), Key.data(),
                                S.c_str());
  Out = V;
  return Status::okStatus();
}

} // namespace

Status JumpStartOptions::set(std::string_view Key, std::string_view Value) {
  if (Key == "enabled")
    return parseBool(Key, Value, Enabled);
  if (Key == "vasm_block_counters")
    return parseBool(Key, Value, VasmBlockCounters);
  if (Key == "function_order")
    return parseBool(Key, Value, FunctionOrder);
  if (Key == "property_reordering")
    return parseBool(Key, Value, PropertyReordering);
  if (Key == "affinity_property_order")
    return parseBool(Key, Value, AffinityPropertyOrder);
  if (Key == "max_consumer_attempts")
    return parseUInt(Key, Value, MaxConsumerAttempts);
  if (Key == "strict_package_lint")
    return parseBool(Key, Value, StrictPackageLint);
  if (Key == "validation_requests")
    return parseUInt(Key, Value, ValidationRequests);
  if (Key == "max_validation_fault_rate")
    return parseDouble(Key, Value, MaxValidationFaultRate);
  if (Key == "parallelism")
    return parseUInt(Key, Value, Parallelism);
  if (Key == "precompile_live_code")
    return parseBool(Key, Value, PrecompileLiveCode);
  if (Key == "proven_guard_elision")
    return parseBool(Key, Value, ProvenGuardElision);
  if (Key == "min_profiled_funcs")
    return parseUInt(Key, Value, Coverage.MinProfiledFuncs);
  if (Key == "min_total_samples")
    return parseUInt(Key, Value, Coverage.MinTotalSamples);
  if (Key == "min_package_bytes")
    return parseUInt(Key, Value, Coverage.MinPackageBytes);
  return support::errorStatus(StatusCode::InvalidArgument,
                              "unknown Jump-Start option \"%.*s\"",
                              static_cast<int>(Key.size()), Key.data());
}

Status JumpStartOptions::parseAssignments(std::string_view Text) {
  size_t I = 0;
  auto IsSep = [](char C) {
    return C == ',' || C == ' ' || C == '\t' || C == '\n';
  };
  while (I < Text.size()) {
    while (I < Text.size() && IsSep(Text[I]))
      ++I;
    if (I >= Text.size())
      break;
    size_t End = I;
    while (End < Text.size() && !IsSep(Text[End]))
      ++End;
    std::string_view Token = Text.substr(I, End - I);
    I = End;
    size_t Eq = Token.find('=');
    if (Eq == std::string_view::npos)
      return support::errorStatus(
          StatusCode::InvalidArgument,
          "expected key=value, got \"%.*s\"",
          static_cast<int>(Token.size()), Token.data());
    JUMPSTART_RETURN_IF_ERROR(
        set(Token.substr(0, Eq), Token.substr(Eq + 1)));
  }
  return Status::okStatus();
}

std::vector<std::pair<std::string, std::string>>
JumpStartOptions::toKeyValues() const {
  auto B = [](bool V) { return std::string(V ? "true" : "false"); };
  std::vector<std::pair<std::string, std::string>> KVs;
  KVs.emplace_back("enabled", B(Enabled));
  KVs.emplace_back("vasm_block_counters", B(VasmBlockCounters));
  KVs.emplace_back("function_order", B(FunctionOrder));
  KVs.emplace_back("property_reordering", B(PropertyReordering));
  KVs.emplace_back("affinity_property_order", B(AffinityPropertyOrder));
  KVs.emplace_back("max_consumer_attempts",
                   strFormat("%u", MaxConsumerAttempts));
  KVs.emplace_back("strict_package_lint", B(StrictPackageLint));
  KVs.emplace_back("validation_requests",
                   strFormat("%u", ValidationRequests));
  KVs.emplace_back("max_validation_fault_rate",
                   strFormat("%g", MaxValidationFaultRate));
  KVs.emplace_back("parallelism", strFormat("%u", Parallelism));
  KVs.emplace_back("precompile_live_code", B(PrecompileLiveCode));
  KVs.emplace_back("proven_guard_elision", B(ProvenGuardElision));
  KVs.emplace_back("min_profiled_funcs",
                   strFormat("%zu", Coverage.MinProfiledFuncs));
  KVs.emplace_back(
      "min_total_samples",
      strFormat("%llu",
                static_cast<unsigned long long>(Coverage.MinTotalSamples)));
  KVs.emplace_back("min_package_bytes",
                   strFormat("%zu", Coverage.MinPackageBytes));
  return KVs;
}

JumpStartOptionsBuilder &JumpStartOptionsBuilder::enabled(bool V) {
  Opts.Enabled = V;
  return *this;
}
JumpStartOptionsBuilder &JumpStartOptionsBuilder::vasmBlockCounters(bool V) {
  Opts.VasmBlockCounters = V;
  return *this;
}
JumpStartOptionsBuilder &JumpStartOptionsBuilder::functionOrder(bool V) {
  Opts.FunctionOrder = V;
  return *this;
}
JumpStartOptionsBuilder &JumpStartOptionsBuilder::propertyReordering(bool V) {
  Opts.PropertyReordering = V;
  return *this;
}
JumpStartOptionsBuilder &
JumpStartOptionsBuilder::affinityPropertyOrder(bool V) {
  Opts.AffinityPropertyOrder = V;
  return *this;
}
JumpStartOptionsBuilder &
JumpStartOptionsBuilder::maxConsumerAttempts(uint32_t V) {
  Opts.MaxConsumerAttempts = V;
  return *this;
}
JumpStartOptionsBuilder &
JumpStartOptionsBuilder::coverage(const profile::CoverageThresholds &V) {
  Opts.Coverage = V;
  return *this;
}
JumpStartOptionsBuilder &JumpStartOptionsBuilder::strictPackageLint(bool V) {
  Opts.StrictPackageLint = V;
  return *this;
}
JumpStartOptionsBuilder &
JumpStartOptionsBuilder::validationRequests(uint32_t V) {
  Opts.ValidationRequests = V;
  return *this;
}
JumpStartOptionsBuilder &
JumpStartOptionsBuilder::maxValidationFaultRate(double V) {
  Opts.MaxValidationFaultRate = V;
  return *this;
}
JumpStartOptionsBuilder &JumpStartOptionsBuilder::parallelism(uint32_t V) {
  Opts.Parallelism = V;
  return *this;
}
JumpStartOptionsBuilder &
JumpStartOptionsBuilder::precompileLiveCode(bool V) {
  Opts.PrecompileLiveCode = V;
  return *this;
}
JumpStartOptionsBuilder &
JumpStartOptionsBuilder::provenGuardElision(bool V) {
  Opts.ProvenGuardElision = V;
  return *this;
}

Status JumpStartOptionsBuilder::tryBuild(JumpStartOptions &Out) const {
  std::vector<std::string> Diags = Opts.validate();
  if (!Diags.empty())
    return Status::error(StatusCode::FailedPrecondition, Diags.front());
  Out = Opts;
  return Status::okStatus();
}

JumpStartOptions JumpStartOptionsBuilder::build() const {
  JumpStartOptions Out;
  Status S = tryBuild(Out);
  alwaysAssert(S.ok(), "JumpStartOptionsBuilder: invalid options");
  return Out;
}
