//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "core/PackageManager.h"

#include "profile/PackageDelta.h"
#include "profile/PackageMerge.h"
#include "profile/ProfilePackage.h"
#include "support/Hashing.h"

#include <algorithm>

using namespace jumpstart;
using namespace jumpstart::core;
using support::Status;
using support::StatusCode;

const PackageManager::Shelf *PackageManager::find(uint32_t Region,
                                                  uint32_t Bucket) const {
  auto It = Shelves.find(key(Region, Bucket));
  return It == Shelves.end() ? nullptr : &It->second;
}

const PackageManager::Record *PackageManager::find(const PackageId &Id) const {
  const Shelf *S = find(Id.Region, Id.Bucket);
  if (!S || Id.Index >= S->Records.size())
    return nullptr;
  const Record &R = S->Records[Id.Index];
  return R.Manifest.Id == Id ? &R : nullptr;
}

PackageManager::Record &PackageManager::append(uint32_t Region,
                                               uint32_t Bucket,
                                               std::vector<uint8_t> Blob) {
  Shelf &S = Shelves[key(Region, Bucket)];
  Record R;
  R.Manifest.Id = {Region, Bucket, CurrentRelease,
                   static_cast<uint32_t>(S.Records.size())};
  R.Manifest.Checksum = fnv1a(Blob.data(), Blob.size());
  R.Manifest.Bytes = Blob.size();
  // Distribution ships opaque bytes; parsing here only enriches the
  // manifest.  A blob that is not a well-formed package still publishes
  // (the consumer's defensive deserialize is what rejects it).
  profile::ProfilePackage Pkg;
  if (profile::ProfilePackage::deserialize(Blob, Pkg)) {
    R.Manifest.RepoFingerprint = Pkg.RepoFingerprint;
    R.Manifest.Seeders.push_back(Pkg.SeederId);
  }
  R.Full = std::move(Blob);
  S.Records.push_back(std::move(R));
  return S.Records.back();
}

Status PackageManager::publish(uint32_t Region, uint32_t Bucket,
                               std::vector<uint8_t> Blob,
                               PackageManifest *Out) {
  Record &R = append(Region, Bucket, std::move(Blob));
  if (Out)
    *Out = R.Manifest;
  return Status::okStatus();
}

Status PackageManager::publishDelta(uint32_t Region, uint32_t Bucket,
                                    std::vector<uint8_t> Blob,
                                    const PackageId &Parent,
                                    PackageManifest *Out) {
  const Record *P = find(Parent);
  if (!P)
    return support::errorStatus(
        StatusCode::NotFound,
        "delta parent (r%u,b%u) release %u #%u is not a published package",
        Parent.Region, Parent.Bucket, Parent.Release, Parent.Index);
  std::vector<uint8_t> Delta = profile::encodeDelta(P->Full, Blob);
  Record &R = append(Region, Bucket, std::move(Blob));
  R.Manifest.DeltaBytes = Delta.size();
  R.Manifest.Parent = Parent;
  R.Manifest.IsDelta = true;
  R.Delta = std::move(Delta);
  if (Out)
    *Out = R.Manifest;
  return Status::okStatus();
}

Status PackageManager::merge(uint32_t Region, uint32_t Bucket,
                             PackageManifest *Out,
                             const std::map<uint64_t, uint64_t> *Weights) {
  const Shelf *S = find(Region, Bucket);
  if (!S)
    return support::errorStatus(StatusCode::FailedPrecondition,
                                "merge of empty shelf (r%u,b%u)", Region,
                                Bucket);
  // Decode every live package; opaque or corrupt blobs simply do not
  // participate (the consumer would reject them individually anyway).
  std::vector<profile::ProfilePackage> Pkgs;
  for (const Record &R : S->Records) {
    if (R.IsQuarantined)
      continue;
    profile::ProfilePackage P;
    if (profile::ProfilePackage::deserialize(R.Full, P))
      Pkgs.push_back(std::move(P));
  }
  if (Pkgs.empty())
    return support::errorStatus(StatusCode::FailedPrecondition,
                                "shelf (r%u,b%u) holds no mergeable package",
                                Region, Bucket);
  std::vector<profile::MergeInput> Inputs;
  Inputs.reserve(Pkgs.size());
  for (const profile::ProfilePackage &P : Pkgs) {
    profile::MergeInput In;
    In.Pkg = &P;
    if (Weights) {
      auto It = Weights->find(P.SeederId);
      if (It != Weights->end())
        In.Weight = It->second;
    }
    Inputs.push_back(In);
  }
  profile::ProfilePackage Merged;
  JUMPSTART_RETURN_IF_ERROR(profile::mergePackages(Inputs, Merged));
  PackageManifest M;
  JUMPSTART_RETURN_IF_ERROR(publish(Region, Bucket, Merged.serialize(), &M));
  // The merged package's own manifest credits the whole seeder set, not
  // the synthetic merged SeederId the wire format carries.
  Shelf &Sh = Shelves[key(Region, Bucket)];
  Record &R = Sh.Records[M.Id.Index];
  R.Manifest.Seeders.clear();
  for (const profile::MergeInput &In : Inputs)
    R.Manifest.Seeders.push_back(In.Pkg->SeederId);
  std::sort(R.Manifest.Seeders.begin(), R.Manifest.Seeders.end());
  if (Out)
    *Out = R.Manifest;
  return Status::okStatus();
}

Status PackageManager::fetch(const PackageId &Id, PackageHandle &Out) const {
  const Record *R = find(Id);
  if (!R)
    return support::errorStatus(
        StatusCode::NotFound, "no package (r%u,b%u) release %u #%u", Id.Region,
        Id.Bucket, Id.Release, Id.Index);
  Out.Manifest = R->Manifest;
  Out.Blob = &R->Full;
  return Status::okStatus();
}

Status PackageManager::reconstruct(const PackageId &Id,
                                   std::vector<uint8_t> &Out) const {
  const Record *R = find(Id);
  if (!R)
    return support::errorStatus(
        StatusCode::NotFound, "no package (r%u,b%u) release %u #%u", Id.Region,
        Id.Bucket, Id.Release, Id.Index);
  if (!R->Manifest.IsDelta) {
    Out = R->Full;
    return Status::okStatus();
  }
  const Record *P = find(R->Manifest.Parent);
  if (!P)
    return support::errorStatus(
        StatusCode::NotFound,
        "delta parent of (r%u,b%u) release %u #%u has vanished", Id.Region,
        Id.Bucket, Id.Release, Id.Index);
  return profile::applyDelta(P->Full, R->Delta, Out);
}

Status PackageManager::pickRandom(uint32_t Region, uint32_t Bucket, Rng &R,
                                  PackageHandle &Out) const {
  const Shelf *S = find(Region, Bucket);
  if (S) {
    std::vector<uint32_t> Alive;
    for (uint32_t I = 0; I < S->Records.size(); ++I)
      if (!S->Records[I].IsQuarantined)
        Alive.push_back(I);
    if (!Alive.empty()) {
      const Record &Rec = S->Records[Alive[R.nextBelow(Alive.size())]];
      Out.Manifest = Rec.Manifest;
      Out.Blob = &Rec.Full;
      return Status::okStatus();
    }
  }
  return Status::error(StatusCode::Unavailable,
                       "no suitable profile-data package available");
}

size_t PackageManager::available(uint32_t Region, uint32_t Bucket) const {
  const Shelf *S = find(Region, Bucket);
  if (!S)
    return 0;
  size_t N = 0;
  for (const Record &R : S->Records)
    if (!R.IsQuarantined)
      ++N;
  return N;
}

Status PackageManager::quarantine(uint32_t Region, uint32_t Bucket,
                                  uint32_t Index) {
  auto It = Shelves.find(key(Region, Bucket));
  if (It == Shelves.end())
    return support::errorStatus(StatusCode::NotFound,
                                "quarantine of unknown shelf (r%u,b%u)",
                                Region, Bucket);
  Shelf &S = It->second;
  if (Index >= S.Records.size())
    return support::errorStatus(StatusCode::NotFound,
                                "quarantine of unknown package #%u", Index);
  Record &R = S.Records[Index];
  if (!R.IsQuarantined) {
    R.IsQuarantined = true;
    Quarantined.push_back(R.Full);
  }
  return Status::okStatus();
}

Status PackageManager::corrupt(uint32_t Region, uint32_t Bucket,
                               uint32_t Index, Rng &R, uint32_t Flips) {
  auto It = Shelves.find(key(Region, Bucket));
  if (It == Shelves.end())
    return support::errorStatus(StatusCode::NotFound,
                                "corrupt() of unknown shelf (r%u,b%u)",
                                Region, Bucket);
  Shelf &S = It->second;
  if (Index >= S.Records.size())
    return support::errorStatus(StatusCode::NotFound,
                                "corrupt() of unknown package #%u", Index);
  std::vector<uint8_t> &Blob = S.Records[Index].Full;
  for (uint32_t I = 0; I < Flips && !Blob.empty(); ++I) {
    size_t At = R.nextBelow(Blob.size());
    Blob[At] ^= static_cast<uint8_t>(1 + R.nextBelow(255));
  }
  return Status::okStatus();
}

std::vector<PackageManifest> PackageManager::manifests(uint32_t Region,
                                                       uint32_t Bucket) const {
  std::vector<PackageManifest> Out;
  const Shelf *S = find(Region, Bucket);
  if (S)
    for (const Record &R : S->Records)
      Out.push_back(R.Manifest);
  return Out;
}
