//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Jump-Start seeder workflow (paper Figure 3b + section VI-A).
///
/// A seeder server (C2 push phase) boots without Jump-Start, serves its
/// (region, bucket) traffic while its JIT collects the tier-1 profile and
/// the instrumented-optimized-code profile, then: builds the package,
/// checks coverage thresholds (section VI-B), *behaviourally validates*
/// it by restarting in consumer mode and watching health, and only then
/// publishes to the package store.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_CORE_SEEDER_H
#define JUMPSTART_CORE_SEEDER_H

#include "core/Chaos.h"
#include "core/JumpStartOptions.h"
#include "core/PackageManager.h"
#include "fleet/ServerSim.h"
#include "support/Status.h"

#include <string>
#include <vector>

namespace jumpstart::core {

/// Seeder run parameters.
struct SeederParams {
  uint32_t Region = 0;
  uint32_t Bucket = 0;
  uint64_t SeederId = 1;
  /// Requests served while collecting profile data (the C2 window).
  uint32_t Requests = 500;
  uint64_t Seed = 11;
};

/// Outcome of one seeder run.
struct SeederOutcome {
  bool Published = false;
  /// Index on the manager's (region, bucket) shelf when published.
  uint32_t PackageIndex = 0;
  /// Full manifest of the published package (valid when Published).
  PackageManifest Manifest;
  size_t PackageBytes = 0;
  profile::ProfilePackage Package;
  /// Why the workflow stopped: ok when published, else the enumerated
  /// rejection reason (coverage_too_low, lint_failed, validation_crash,
  /// fingerprint_mismatch, validation_fault_rate).
  support::Status Result;
  /// Human-readable problem log (same information as Result, possibly
  /// with additional detail lines).
  std::vector<std::string> Problems;
};

/// Runs the complete seeder workflow against \p Manager.  \p BaseConfig
/// is the fleet's server configuration; seeder instrumentation is enabled
/// on top of it.  \p Chaos (optional) injects JIT bugs for reliability
/// experiments.  \p Obs (optional) receives the workflow's spans
/// (collect / validate / publish) and per-reason rejection counters.
SeederOutcome runSeederWorkflow(const fleet::Workload &W,
                                const fleet::TrafficModel &Traffic,
                                vm::ServerConfig BaseConfig,
                                const JumpStartOptions &Opts,
                                PackageManager &Manager,
                                const SeederParams &P,
                                const ChaosHooks *Chaos = nullptr,
                                obs::Observability *Obs = nullptr);

} // namespace jumpstart::core

#endif // JUMPSTART_CORE_SEEDER_H
