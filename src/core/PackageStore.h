//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile-package distribution store.
///
/// DEPRECATED: superseded by core::PackageManager (PackageManager.h),
/// which adds versioned PackageIds, provenance manifests, multi-seeder
/// merge, and delta releases on top of the same shelf semantics.  This
/// shim is kept for one release for out-of-tree users; everything
/// in-tree has been migrated.  New code must use PackageManager.
///
/// Seeders publish serialized packages keyed by (data-center region,
/// semantic bucket); consumers pick one *at random* per restart (paper
/// section VI-A technique 2).  The store also implements the paper's
/// "database of problematic profile data": packages implicated in crashes
/// are quarantined for offline debugging rather than deleted.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_CORE_PACKAGESTORE_H
#define JUMPSTART_CORE_PACKAGESTORE_H

#include "support/Random.h"
#include "support/Status.h"

#include <cstdint>
#include <map>
#include <vector>

namespace jumpstart::core {

/// In-memory package store (one per simulated fleet).
class PackageStore {
public:
  /// A published package's identity within its (region, bucket) shelf.
  struct Selection {
    uint32_t Index = 0;
    const std::vector<uint8_t> *Blob = nullptr;
  };

  /// Publishes \p Blob for (\p Region, \p Bucket); \returns its index.
  uint32_t publish(uint32_t Region, uint32_t Bucket,
                   std::vector<uint8_t> Blob);

  /// Picks a random non-quarantined package into \p Out.  \returns
  /// unavailable when the shelf is missing, empty, or fully quarantined
  /// (the code doubles as the consumer's rejection-reason metric label).
  support::Status pickRandom(uint32_t Region, uint32_t Bucket, Rng &R,
                             Selection &Out) const;

  /// Number of available (non-quarantined) packages.
  size_t available(uint32_t Region, uint32_t Bucket) const;

  /// Moves a package to the problematic-data database (paper VI-A: kept
  /// "so that rare bugs ... can later be easily reproduced and
  /// debugged").  \returns not_found for an unknown shelf or index.
  support::Status quarantine(uint32_t Region, uint32_t Bucket,
                             uint32_t Index);

  size_t quarantinedCount() const { return Quarantined.size(); }

  /// Test/chaos helper: flips random bytes of a published package,
  /// simulating distribution-layer corruption.  \returns not_found for
  /// an unknown shelf or index.
  support::Status corrupt(uint32_t Region, uint32_t Bucket, uint32_t Index,
                          Rng &R, uint32_t Flips = 16);

private:
  struct Shelf {
    std::vector<std::vector<uint8_t>> Blobs;
    std::vector<bool> IsQuarantined;
  };
  static uint64_t key(uint32_t Region, uint32_t Bucket) {
    return (static_cast<uint64_t>(Region) << 32) | Bucket;
  }
  const Shelf *find(uint32_t Region, uint32_t Bucket) const;

  std::map<uint64_t, Shelf> Shelves;
  std::vector<std::vector<uint8_t>> Quarantined;
};

} // namespace jumpstart::core

#endif // JUMPSTART_CORE_PACKAGESTORE_H
