//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Jump-Start consumer workflow (paper Figure 3c + section VI-A).
///
/// A consumer (C3 push phase) picks a random package for its
/// (region, bucket), deserializes it, pre-compiles all optimized code
/// before serving, and falls back automatically: corrupt or missing
/// packages are skipped, crash-inducing ones trigger a restart with a
/// fresh random pick, and after a bounded number of failures the server
/// boots with Jump-Start disabled, collecting its own profile.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_CORE_CONSUMER_H
#define JUMPSTART_CORE_CONSUMER_H

#include "core/Chaos.h"
#include "core/JumpStartOptions.h"
#include "core/PackageManager.h"
#include "fleet/Traffic.h"
#include "fleet/WorkloadGen.h"
#include "support/Status.h"
#include "vm/Server.h"

#include <memory>
#include <string>
#include <vector>

namespace jumpstart::core {

/// Consumer boot parameters.
struct ConsumerParams {
  uint32_t Region = 0;
  uint32_t Bucket = 0;
  uint64_t Seed = 21;
  /// Server/trace name used when observability is attached.
  std::string Name = "consumer";
};

/// Outcome of booting one consumer.
struct ConsumerOutcome {
  /// The started server (always valid: fallback guarantees a boot).
  std::unique_ptr<vm::Server> Server;
  bool UsedJumpStart = false;
  /// Jump-Start boot attempts made (crashes + corrupt packages).
  uint32_t Attempts = 0;
  uint32_t CrashCount = 0;
  vm::InitStats Init;
  std::vector<std::string> Log;
  /// Per-package rejection reasons, in attempt order (corrupt_data,
  /// lint_failed, crash_detected, fingerprint_mismatch).  Empty when the
  /// first pick was accepted.
  std::vector<support::Status> Rejections;
};

/// Applies the Jump-Start optimization switches of \p Opts to a server
/// configuration (used by consumers and by the Figure 6 ablation).
void applyOptimizationOptions(vm::ServerConfig &Config,
                              const JumpStartOptions &Opts);

/// Runs the whole-program analysis over \p R and attaches the distilled
/// JIT facts to \p Config.  No-op unless ProvenGuardElision is enabled
/// and no facts are attached yet, so callers can pre-attach a shared
/// facts object (the conformance matrix analyzes each program once and
/// shares the result across cells).
void attachProvenFacts(vm::ServerConfig &Config, const bc::Repo &R);

/// Boots one consumer against \p Manager with full fallback behaviour.
/// \p Obs (optional) receives per-reason package rejection counters, the
/// accept counter, and the consumer's server/JIT spans.
ConsumerOutcome startConsumer(const fleet::Workload &W,
                              vm::ServerConfig BaseConfig,
                              const JumpStartOptions &Opts,
                              const PackageManager &Manager,
                              const ConsumerParams &P,
                              const ChaosHooks *Chaos = nullptr,
                              obs::Observability *Obs = nullptr);

} // namespace jumpstart::core

#endif // JUMPSTART_CORE_CONSUMER_H
