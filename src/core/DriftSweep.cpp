//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "core/DriftSweep.h"

#include "core/Consumer.h"
#include "fleet/Traffic.h"
#include "profile/ProfilePackage.h"
#include "support/StringUtil.h"

using namespace jumpstart;
using namespace jumpstart::core;

DriftSweepResult jumpstart::core::runDriftSweep(const DriftSweepParams &P) {
  DriftSweepResult R;

  // Release 0: the site the seeder profiles.
  fleet::DriftParams Base = P.Drift;
  Base.Release = 0;
  auto W0 = fleet::generateDriftedWorkload(P.Site, Base);
  fleet::TrafficModel Traffic0(*W0, fleet::TrafficParams(), 42);

  // Grow the one seeder package everything downstream rebases from.
  vm::ServerConfig SeederConfig = P.Config;
  SeederConfig.Jit.SeederInstrumentation = true;
  std::unique_ptr<vm::Server> Seeder =
      fleet::runSeeder(*W0, Traffic0, SeederConfig, /*Region=*/0,
                       /*Bucket=*/0, P.SeederRequests, P.Seed);
  profile::ProfilePackage Pkg0 =
      Seeder->buildSeederPackage(/*Region=*/0, /*Bucket=*/0, /*SeederId=*/1);
  Seeder.reset();
  R.Log.push_back(strFormat("seeder: %zu bytes, %zu funcs profiled",
                            Pkg0.serialize().size(),
                            Pkg0.numProfiledFuncs()));

  // One shelf per age: bucket A holds the (possibly delta) rebased
  // package targeting release A.
  PackageManager Manager;
  PackageId PrevId;
  bool HavePrev = false;
  JumpStartOptions Opts;

  for (uint32_t Age = 0; Age <= P.MaxAge; ++Age) {
    DriftAgePoint Point;
    Point.Age = Age;

    fleet::DriftParams DA = P.Drift;
    DA.Release = Age;
    std::unique_ptr<fleet::Workload> Owned;
    if (Age > 0)
      Owned = fleet::generateDriftedWorkload(P.Site, DA);
    const fleet::Workload &WA = Age == 0 ? *W0 : *Owned;
    fleet::TrafficModel TrafficA(WA, fleet::TrafficParams(), 42);

    // Rebase the release-0 profile onto release A's symbols.  Age 0
    // still goes through the rebase (it must be the identity mapping).
    profile::ProfilePackage Rebased;
    support::Status RebaseStatus = profile::rebasePackage(
        Pkg0, W0->Repo, WA.Repo, vm::Server::repoFingerprint(WA.Repo),
        Rebased, &Point.Rebase);
    if (!RebaseStatus.ok()) {
      R.Result = RebaseStatus;
      R.Log.push_back(strFormat("age %u: rebase failed: %s", Age,
                                RebaseStatus.message().c_str()));
      break;
    }
    Point.ProfiledFuncs = Rebased.numProfiledFuncs();

    // Publish: the base age in full, later ages as deltas against the
    // previous age's package -- the wire cost a weekly push would pay.
    std::vector<uint8_t> Bytes = Rebased.serialize();
    Point.PackageBytes = Bytes.size();
    Manager.beginRelease();
    PackageManifest Manifest;
    support::Status PublishStatus =
        (P.UseDeltaPackages && HavePrev)
            ? Manager.publishDelta(0, Age, Bytes, PrevId, &Manifest)
            : Manager.publish(0, Age, Bytes, &Manifest);
    if (!PublishStatus.ok()) {
      R.Result = PublishStatus;
      R.Log.push_back(strFormat("age %u: publish failed: %s", Age,
                                PublishStatus.message().c_str()));
      break;
    }
    Point.WireBytes =
        Manifest.isDelta() ? Manifest.DeltaBytes : Manifest.Bytes;

    // Round-trip the distribution path: reconstructed bytes must be the
    // exact serialized package.
    std::vector<uint8_t> Rebuilt;
    support::Status Reconstructed =
        Manager.reconstruct(Manifest.Id, Rebuilt);
    if (!Reconstructed.ok() || Rebuilt != Bytes) {
      R.Result = Reconstructed.ok()
                     ? support::errorStatus(
                           support::StatusCode::CorruptData,
                           "age %u: reconstructed bytes differ", Age)
                     : Reconstructed;
      R.Log.push_back(strFormat("age %u: reconstruct failed", Age));
      break;
    }
    PrevId = Manifest.Id;
    HavePrev = true;

    // The consumer's install gate: lint + fingerprint against release A.
    ConsumerParams CP;
    CP.Region = 0;
    CP.Bucket = Age;
    CP.Seed = P.Seed + Age;
    CP.Name = strFormat("drift-consumer-a%u", Age);
    ConsumerOutcome Outcome = startConsumer(WA, P.Config, Opts, Manager,
                                            CP, /*Chaos=*/nullptr, P.Obs);
    Point.ConsumerUsedJumpStart = Outcome.UsedJumpStart;
    Point.ConsumerAttempts = Outcome.Attempts;
    Outcome.Server.reset();

    // Warmup benefit on release A with the aged profile vs cold.
    fleet::ServerSimParams Sim;
    Sim.DurationSeconds = P.WarmupSeconds;
    Sim.OfferedRps = P.OfferedRps;
    Sim.Seed = P.Seed + 100 + Age;
    Sim.RunLabel = strFormat("drift-a%u-nojs", Age);
    Sim.Obs = P.Obs;
    fleet::WarmupResult Cold = fleet::runWarmup(WA, TrafficA, P.Config, Sim);
    Sim.RunLabel = strFormat("drift-a%u-js", Age);
    fleet::WarmupResult Warm =
        fleet::runWarmup(WA, TrafficA, P.Config, Sim, &Rebased);
    Point.CapacityLossWithout = Cold.CapacityLossFraction;
    Point.CapacityLossWith = Warm.CapacityLossFraction;
    Point.BenefitFraction =
        Cold.CapacityLossFraction > 0
            ? 1.0 - Warm.CapacityLossFraction / Cold.CapacityLossFraction
            : 0.0;
    Point.ColdClass = fleet::classifyWarmupThroughput(Cold);
    Point.WarmClass = fleet::classifyWarmupThroughput(Warm);

    R.Log.push_back(strFormat(
        "age %u: funcs %zu (dropped %zu), wire %zu bytes%s, "
        "jump-start=%s, loss %.3f vs %.3f (benefit %.1f%%), "
        "class %s -> %s",
        Age, Point.ProfiledFuncs, Point.Rebase.FuncsDropped,
        Point.WireBytes, Manifest.isDelta() ? " (delta)" : "",
        Point.ConsumerUsedJumpStart ? "yes" : "no",
        Point.CapacityLossWith, Point.CapacityLossWithout,
        100 * Point.BenefitFraction,
        stats::warmupClassName(Point.ColdClass.Class),
        stats::warmupClassName(Point.WarmClass.Class)));
    R.Points.push_back(Point);
  }
  return R;
}
