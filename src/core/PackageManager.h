//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile-package lifecycle manager (ROADMAP item 4).
///
/// PackageManager gives every published package a versioned identity
/// (PackageId) and a manifest
/// recording how it came to be -- release epoch, the set of seeders whose
/// profiles it folds, its checksum, and (for delta releases) the parent
/// package it was encoded against.  On top of the store's shelving /
/// random-pick / quarantine duties it adds the lifecycle operations the
/// paper leaves open:
///
///   * merge()        -- fold every live package of a shelf into one
///                       multi-seeder package (profile::mergePackages),
///                       byte-deterministic in arrival order;
///   * publishDelta() -- publish a release delta-encoded against its
///                       parent (profile::encodeDelta), keeping both the
///                       servable full blob and the wire delta;
///   * reconstruct()  -- rebuild a package's full bytes the way a
///                       distribution endpoint would: from the parent
///                       plus the delta, checksum-verified.
///
/// Every operation returns support::Status; consumers keep the exact
/// random-selection semantics of the old store (paper section VI-A
/// technique 2), including its RNG draw sequence, so existing simulated
/// fleets reproduce byte-identically.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_CORE_PACKAGEMANAGER_H
#define JUMPSTART_CORE_PACKAGEMANAGER_H

#include "support/Random.h"
#include "support/Status.h"

#include <cstdint>
#include <map>
#include <vector>

namespace jumpstart::core {

/// Versioned identity of one published package.
struct PackageId {
  uint32_t Region = 0;
  uint32_t Bucket = 0;
  /// Release epoch the package was published under (beginRelease()).
  uint32_t Release = 0;
  /// Position on its (Region, Bucket) shelf.
  uint32_t Index = 0;

  friend bool operator==(const PackageId &A, const PackageId &B) {
    return A.Region == B.Region && A.Bucket == B.Bucket &&
           A.Release == B.Release && A.Index == B.Index;
  }
  friend bool operator!=(const PackageId &A, const PackageId &B) {
    return !(A == B);
  }
};

/// Provenance record of one published package.
struct PackageManifest {
  PackageId Id;
  /// fnv1a over the full (servable) package bytes.
  uint64_t Checksum = 0;
  /// Application build the profile targets (0 when the blob does not
  /// parse as a ProfilePackage -- the store accepts arbitrary bytes).
  uint64_t RepoFingerprint = 0;
  /// Seeders whose profiles the package folds, ascending.  One entry for
  /// a plain seeder package, N after a merge, empty for opaque blobs.
  std::vector<uint64_t> Seeders;
  /// Size of the full package bytes.
  size_t Bytes = 0;
  /// Size of the wire delta (0 for a full release).
  size_t DeltaBytes = 0;
  /// Parent release for a delta package (meaningful iff IsDelta).
  PackageId Parent;
  bool IsDelta = false;

  bool isDelta() const { return IsDelta; }
};

/// A fetched package: its manifest plus the full servable bytes (owned by
/// the manager; valid until the package is corrupted or the manager dies).
struct PackageHandle {
  PackageManifest Manifest;
  const std::vector<uint8_t> *Blob = nullptr;
};

/// In-memory package lifecycle manager (one per simulated fleet).
class PackageManager {
public:
  /// Publishes \p Blob for (\p Region, \p Bucket) under the current
  /// release epoch.  Accepts arbitrary bytes (distribution does not
  /// parse); when the blob is a well-formed ProfilePackage the manifest
  /// records its fingerprint and seeder set.  \p Out (optional) receives
  /// the manifest of the published package.
  support::Status publish(uint32_t Region, uint32_t Bucket,
                          std::vector<uint8_t> Blob,
                          PackageManifest *Out = nullptr);

  /// Publishes \p Blob as a delta release against \p Parent: the wire
  /// delta is encoded with profile::encodeDelta and kept alongside the
  /// full bytes, and the manifest links to the parent.  NotFound when
  /// \p Parent names no published package.
  support::Status publishDelta(uint32_t Region, uint32_t Bucket,
                               std::vector<uint8_t> Blob,
                               const PackageId &Parent,
                               PackageManifest *Out = nullptr);

  /// Folds every live, well-formed package of the shelf into one
  /// multi-seeder package and publishes it.  \p Weights (optional) maps
  /// SeederId -> merge weight; absent seeders weigh 1.  The merged bytes
  /// are identical for any publication order of the inputs.
  /// FailedPrecondition when the shelf holds nothing mergeable.
  support::Status merge(uint32_t Region, uint32_t Bucket,
                        PackageManifest *Out = nullptr,
                        const std::map<uint64_t, uint64_t> *Weights = nullptr);

  /// Looks up \p Id (all four coordinates must match) into \p Out.
  support::Status fetch(const PackageId &Id, PackageHandle &Out) const;

  /// Rebuilds the full bytes of \p Id the way a distribution endpoint
  /// would: a full release is copied out; a delta release is rebuilt
  /// from its parent's bytes plus the wire delta, checksum-verified.
  support::Status reconstruct(const PackageId &Id,
                              std::vector<uint8_t> &Out) const;

  /// Picks a random non-quarantined package (paper section VI-A
  /// technique 2), with a stable Unavailable message the consumer's
  /// fallback path logs.
  support::Status pickRandom(uint32_t Region, uint32_t Bucket, Rng &R,
                             PackageHandle &Out) const;

  /// Number of available (non-quarantined) packages on the shelf.
  size_t available(uint32_t Region, uint32_t Bucket) const;

  /// Moves a package to the problematic-data database (paper VI-A).
  support::Status quarantine(uint32_t Region, uint32_t Bucket,
                             uint32_t Index);

  size_t quarantinedCount() const { return Quarantined.size(); }

  /// Test/chaos helper: flips random bytes of a published package's full
  /// blob, simulating distribution-layer corruption.
  support::Status corrupt(uint32_t Region, uint32_t Bucket, uint32_t Index,
                          Rng &R, uint32_t Flips = 16);

  /// Starts a new release epoch; subsequent publishes are stamped with
  /// the returned epoch.
  uint32_t beginRelease() { return ++CurrentRelease; }
  uint32_t currentRelease() const { return CurrentRelease; }

  /// Manifests of every package on the shelf, in publication order.
  std::vector<PackageManifest> manifests(uint32_t Region,
                                         uint32_t Bucket) const;

private:
  struct Record {
    std::vector<uint8_t> Full;  ///< servable bytes
    std::vector<uint8_t> Delta; ///< wire delta (empty for full releases)
    PackageManifest Manifest;
    bool IsQuarantined = false;
  };
  struct Shelf {
    std::vector<Record> Records;
  };
  static uint64_t key(uint32_t Region, uint32_t Bucket) {
    return (static_cast<uint64_t>(Region) << 32) | Bucket;
  }
  const Shelf *find(uint32_t Region, uint32_t Bucket) const;
  const Record *find(const PackageId &Id) const;
  Record &append(uint32_t Region, uint32_t Bucket, std::vector<uint8_t> Blob);

  std::map<uint64_t, Shelf> Shelves;
  std::vector<std::vector<uint8_t>> Quarantined;
  uint32_t CurrentRelease = 0;
};

} // namespace jumpstart::core

#endif // JUMPSTART_CORE_PACKAGEMANAGER_H
