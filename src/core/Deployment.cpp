//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "core/Deployment.h"

#include "support/StringUtil.h"
#include "support/ThreadPool.h"

#include <memory>

using namespace jumpstart;
using namespace jumpstart::core;

DeploymentReport jumpstart::core::simulateDeployment(
    const fleet::Workload &W, const fleet::TrafficModel &Traffic,
    const vm::ServerConfig &BaseConfig, const JumpStartOptions &Opts,
    PackageManager &Manager, const DeploymentParams &P,
    const ChaosHooks *Chaos, obs::Observability *Obs) {
  DeploymentReport Report;
  Rng R(P.Seed);

  obs::Tracer *Trace = Obs ? &Obs->Trace : nullptr;
  uint32_t Track = 0;
  if (Obs)
    Track = Obs->Trace.allocTrack("deployment");

  // --- C1: restart the employee-facing canary servers (no Jump-Start
  // data exists yet for the new code version) and verify basic health.
  {
    obs::ScopedSpan Phase(Trace, "push-C1-canary", "phase", Track);
    vm::ServerConfig Config = BaseConfig;
    Config.Obs = Obs;
    Config.Name = "canary";
    vm::Server Canary(W.Repo, Config, R.next());
    Canary.startup();
    uint64_t Faults = 0;
    const uint32_t CanaryRequests = 25;
    for (uint32_t I = 0; I < CanaryRequests; ++I) {
      uint32_t E = Traffic.sampleEndpoint(0, 0, R);
      Canary.executeRequest(W.Endpoints[E],
                            fleet::TrafficModel::makeArgs(R));
    }
    Faults = Canary.totalFaults();
    Report.CanaryHealthy = Faults < CanaryRequests; // < 1 fault/request
    Report.Log.push_back(strFormat(
        "C1: canary served %u requests, %llu faults -> %s", CanaryRequests,
        static_cast<unsigned long long>(Faults),
        Report.CanaryHealthy ? "healthy" : "UNHEALTHY"));
    if (!Report.CanaryHealthy)
      return Report; // push halts before C2
  }

  // --- C2: restart 2% of the fleet as seeders; each collects, validates
  // and publishes its own package.
  {
    obs::ScopedSpan Phase(Trace, "push-C2-seeders", "phase", Track);
    // Seeds are drawn serially in loop order whether or not a pool is
    // attached, so the RNG stream -- and with it every seeder's behaviour
    // -- is independent of the worker count.
    struct SeederTask {
      uint32_t Region, Bucket, S;
      SeederParams SP;
    };
    std::vector<SeederTask> Tasks;
    for (uint32_t Region = 0; Region < P.Regions; ++Region) {
      for (uint32_t Bucket = 0; Bucket < P.Buckets; ++Bucket) {
        for (uint32_t S = 0; S < P.SeedersPerPair; ++S) {
          SeederParams SP;
          SP.Region = Region;
          SP.Bucket = Bucket;
          SP.SeederId = (static_cast<uint64_t>(Region) << 32) |
                        (Bucket << 8) | S;
          SP.Requests = P.SeederRequests;
          SP.Seed = R.next();
          Tasks.push_back({Region, Bucket, S, SP});
        }
      }
    }
    std::vector<SeederOutcome> Outcomes(Tasks.size());
    if (!P.Pool) {
      for (size_t I = 0; I < Tasks.size(); ++I)
        Outcomes[I] = runSeederWorkflow(W, Traffic, BaseConfig, Opts,
                                        Manager, Tasks[I].SP, Chaos, Obs);
    } else {
      // Each task publishes into a task-local manager and records into
      // task-local observability; results fold back in loop order below.
      std::vector<PackageManager> LocalManagers(Tasks.size());
      std::vector<std::unique_ptr<obs::Observability>> LocalObs(
          Tasks.size());
      P.Pool->parallelFor(Tasks.size(), [&](size_t I) {
        if (Obs)
          LocalObs[I] = std::make_unique<obs::Observability>();
        Outcomes[I] = runSeederWorkflow(W, Traffic, BaseConfig, Opts,
                                        LocalManagers[I], Tasks[I].SP, Chaos,
                                        LocalObs[I].get());
      });
      for (size_t I = 0; I < Tasks.size(); ++I) {
        if (Obs && LocalObs[I])
          Obs->Metrics.mergeFrom(LocalObs[I]->Metrics);
        // Republish into the shared manager.  The workflow published the
        // package's serialized bytes, so re-serializing here lands the
        // byte-identical blob at the same shelf position as the serial
        // path.
        if (Outcomes[I].Published &&
            Manager
                .publish(Tasks[I].Region, Tasks[I].Bucket,
                         Outcomes[I].Package.serialize(),
                         &Outcomes[I].Manifest)
                .ok())
          Outcomes[I].PackageIndex = Outcomes[I].Manifest.Id.Index;
      }
    }
    for (size_t I = 0; I < Tasks.size(); ++I) {
      const SeederTask &T = Tasks[I];
      const SeederOutcome &Outcome = Outcomes[I];
      ++Report.SeedersRun;
      if (Outcome.Published) {
        ++Report.PackagesPublished;
        Report.Log.push_back(strFormat(
            "C2: seeder (r%u,b%u,#%u) published %zu bytes", T.Region,
            T.Bucket, T.S, Outcome.PackageBytes));
      } else {
        ++Report.SeederFailures;
        std::string Why = Outcome.Problems.empty()
                              ? "unknown"
                              : Outcome.Problems.front();
        Report.Log.push_back(strFormat(
            "C2: seeder (r%u,b%u,#%u) FAILED: %s", T.Region, T.Bucket,
            T.S, Why.c_str()));
      }
    }

    // Optional multi-seeder fold: one merged release per shelf, published
    // alongside the individual packages.  The merge itself is input-order
    // insensitive and this loop is serial, so the shelf contents stay
    // identical for any worker count.
    if (P.PublishMergedPackage) {
      for (uint32_t Region = 0; Region < P.Regions; ++Region) {
        for (uint32_t Bucket = 0; Bucket < P.Buckets; ++Bucket) {
          PackageManifest Merged;
          support::Status MergeStatus =
              Manager.merge(Region, Bucket, &Merged);
          if (MergeStatus.ok()) {
            ++Report.MergedPackages;
            Report.Log.push_back(strFormat(
                "C2: merged shelf (r%u,b%u) from %zu seeders (%zu bytes)",
                Region, Bucket, Merged.Seeders.size(), Merged.Bytes));
          } else {
            Report.Log.push_back(strFormat(
                "C2: merge of shelf (r%u,b%u) skipped: %s", Region, Bucket,
                MergeStatus.message().c_str()));
          }
        }
      }
    }
  }

  // --- C3: restart the rest of the fleet as consumers (a sample of real
  // boots per (region, bucket)).
  double InitTotal = 0;
  {
    obs::ScopedSpan Phase(Trace, "push-C3-consumers", "phase", Track);
    struct ConsumerTask {
      uint32_t Region, Bucket, C;
      ConsumerParams CP;
    };
    std::vector<ConsumerTask> Tasks;
    for (uint32_t Region = 0; Region < P.Regions; ++Region) {
      for (uint32_t Bucket = 0; Bucket < P.Buckets; ++Bucket) {
        for (uint32_t C = 0; C < P.ConsumerSamplesPerPair; ++C) {
          ConsumerParams CP;
          CP.Region = Region;
          CP.Bucket = Bucket;
          CP.Seed = R.next();
          CP.Name = strFormat("consumer-r%u-b%u-%u", Region, Bucket, C);
          Tasks.push_back({Region, Bucket, C, CP});
        }
      }
    }
    std::vector<ConsumerOutcome> Outcomes(Tasks.size());
    if (!P.Pool) {
      for (size_t I = 0; I < Tasks.size(); ++I)
        Outcomes[I] = startConsumer(W, BaseConfig, Opts, Manager,
                                    Tasks[I].CP, Chaos, Obs);
    } else {
      // Consumers only read the shared store (const pickRandom); each
      // records into task-local observability, merged in loop order.
      std::vector<std::unique_ptr<obs::Observability>> LocalObs(
          Tasks.size());
      P.Pool->parallelFor(Tasks.size(), [&](size_t I) {
        if (Obs)
          LocalObs[I] = std::make_unique<obs::Observability>();
        Outcomes[I] = startConsumer(W, BaseConfig, Opts, Manager,
                                    Tasks[I].CP, Chaos, LocalObs[I].get());
      });
      for (size_t I = 0; I < Tasks.size(); ++I)
        if (Obs && LocalObs[I])
          Obs->Metrics.mergeFrom(LocalObs[I]->Metrics);
    }
    for (size_t I = 0; I < Tasks.size(); ++I) {
      const ConsumerTask &T = Tasks[I];
      const ConsumerOutcome &Outcome = Outcomes[I];
      ++Report.ConsumersBooted;
      if (Outcome.UsedJumpStart)
        ++Report.ConsumersUsedJumpStart;
      InitTotal += Outcome.Init.TotalSeconds;
      Report.Log.push_back(strFormat(
          "C3: consumer (r%u,b%u,#%u) init %.2fs, jump-start=%s",
          T.Region, T.Bucket, T.C, Outcome.Init.TotalSeconds,
          Outcome.UsedJumpStart ? "yes" : "no"));
    }
  }
  if (Report.ConsumersBooted)
    Report.MeanConsumerInitSeconds = InitTotal / Report.ConsumersBooted;
  return Report;
}
