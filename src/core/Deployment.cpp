//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "core/Deployment.h"

#include "support/StringUtil.h"

using namespace jumpstart;
using namespace jumpstart::core;

DeploymentReport jumpstart::core::simulateDeployment(
    const fleet::Workload &W, const fleet::TrafficModel &Traffic,
    const vm::ServerConfig &BaseConfig, const JumpStartOptions &Opts,
    PackageStore &Store, const DeploymentParams &P,
    const ChaosHooks *Chaos, obs::Observability *Obs) {
  DeploymentReport Report;
  Rng R(P.Seed);

  obs::Tracer *Trace = Obs ? &Obs->Trace : nullptr;
  uint32_t Track = 0;
  if (Obs)
    Track = Obs->Trace.allocTrack("deployment");

  // --- C1: restart the employee-facing canary servers (no Jump-Start
  // data exists yet for the new code version) and verify basic health.
  {
    obs::ScopedSpan Phase(Trace, "push-C1-canary", "phase", Track);
    vm::ServerConfig Config = BaseConfig;
    Config.Obs = Obs;
    Config.Name = "canary";
    vm::Server Canary(W.Repo, Config, R.next());
    Canary.startup();
    uint64_t Faults = 0;
    const uint32_t CanaryRequests = 25;
    for (uint32_t I = 0; I < CanaryRequests; ++I) {
      uint32_t E = Traffic.sampleEndpoint(0, 0, R);
      Canary.executeRequest(W.Endpoints[E],
                            fleet::TrafficModel::makeArgs(R));
    }
    Faults = Canary.totalFaults();
    Report.CanaryHealthy = Faults < CanaryRequests; // < 1 fault/request
    Report.Log.push_back(strFormat(
        "C1: canary served %u requests, %llu faults -> %s", CanaryRequests,
        static_cast<unsigned long long>(Faults),
        Report.CanaryHealthy ? "healthy" : "UNHEALTHY"));
    if (!Report.CanaryHealthy)
      return Report; // push halts before C2
  }

  // --- C2: restart 2% of the fleet as seeders; each collects, validates
  // and publishes its own package.
  {
    obs::ScopedSpan Phase(Trace, "push-C2-seeders", "phase", Track);
    for (uint32_t Region = 0; Region < P.Regions; ++Region) {
      for (uint32_t Bucket = 0; Bucket < P.Buckets; ++Bucket) {
        for (uint32_t S = 0; S < P.SeedersPerPair; ++S) {
          SeederParams SP;
          SP.Region = Region;
          SP.Bucket = Bucket;
          SP.SeederId = (static_cast<uint64_t>(Region) << 32) |
                        (Bucket << 8) | S;
          SP.Requests = P.SeederRequests;
          SP.Seed = R.next();
          ++Report.SeedersRun;
          SeederOutcome Outcome = runSeederWorkflow(
              W, Traffic, BaseConfig, Opts, Store, SP, Chaos, Obs);
          if (Outcome.Published) {
            ++Report.PackagesPublished;
            Report.Log.push_back(strFormat(
                "C2: seeder (r%u,b%u,#%u) published %zu bytes", Region,
                Bucket, S, Outcome.PackageBytes));
          } else {
            ++Report.SeederFailures;
            std::string Why = Outcome.Problems.empty()
                                  ? "unknown"
                                  : Outcome.Problems.front();
            Report.Log.push_back(strFormat(
                "C2: seeder (r%u,b%u,#%u) FAILED: %s", Region, Bucket, S,
                Why.c_str()));
          }
        }
      }
    }
  }

  // --- C3: restart the rest of the fleet as consumers (a sample of real
  // boots per (region, bucket)).
  double InitTotal = 0;
  {
    obs::ScopedSpan Phase(Trace, "push-C3-consumers", "phase", Track);
    for (uint32_t Region = 0; Region < P.Regions; ++Region) {
      for (uint32_t Bucket = 0; Bucket < P.Buckets; ++Bucket) {
        for (uint32_t C = 0; C < P.ConsumerSamplesPerPair; ++C) {
          ConsumerParams CP;
          CP.Region = Region;
          CP.Bucket = Bucket;
          CP.Seed = R.next();
          CP.Name = strFormat("consumer-r%u-b%u-%u", Region, Bucket, C);
          ConsumerOutcome Outcome =
              startConsumer(W, BaseConfig, Opts, Store, CP, Chaos, Obs);
          ++Report.ConsumersBooted;
          if (Outcome.UsedJumpStart)
            ++Report.ConsumersUsedJumpStart;
          InitTotal += Outcome.Init.TotalSeconds;
          Report.Log.push_back(strFormat(
              "C3: consumer (r%u,b%u,#%u) init %.2fs, jump-start=%s",
              Region, Bucket, C, Outcome.Init.TotalSeconds,
              Outcome.UsedJumpStart ? "yes" : "no"));
        }
      }
    }
  }
  if (Report.ConsumersBooted)
    Report.MeanConsumerInitSeconds = InitTotal / Report.ConsumersBooted;
  return Report;
}
