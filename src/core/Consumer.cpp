//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "core/Consumer.h"

#include "analysis/Linter.h"
#include "analysis/WholeProgram.h"
#include "core/CoreObs.h"
#include "runtime/Builtins.h"
#include "support/StringUtil.h"

using namespace jumpstart;
using namespace jumpstart::core;
using support::Status;
using support::StatusCode;

void jumpstart::core::applyOptimizationOptions(vm::ServerConfig &Config,
                                               const JumpStartOptions &Opts) {
  Config.Jit.UseVasmCounters = Opts.VasmBlockCounters;
  Config.Jit.UsePackageFuncOrder = Opts.FunctionOrder;
  Config.ReorderProperties = Opts.PropertyReordering;
  Config.UseAffinityPropOrder = Opts.AffinityPropertyOrder;
  Config.Jit.Parallelism = Opts.Parallelism;
  Config.Jit.PrecompileLiveCode = Opts.PrecompileLiveCode;
  Config.Jit.ProvenGuardElision = Opts.ProvenGuardElision;
}

void jumpstart::core::attachProvenFacts(vm::ServerConfig &Config,
                                        const bc::Repo &R) {
  if (!Config.Jit.ProvenGuardElision || Config.Jit.Facts)
    return;
  analysis::WholeProgram WP(R);
  Config.Jit.Facts = WP.jitFacts();
}

ConsumerOutcome jumpstart::core::startConsumer(const fleet::Workload &W,
                                               vm::ServerConfig BaseConfig,
                                               const JumpStartOptions &Opts,
                                               const PackageManager &Manager,
                                               const ConsumerParams &P,
                                               const ChaosHooks *Chaos,
                                               obs::Observability *Obs) {
  ConsumerOutcome Outcome;
  Rng R(P.Seed);
  applyOptimizationOptions(BaseConfig, Opts);
  attachProvenFacts(BaseConfig, W.Repo);
  BaseConfig.Obs = Obs;
  BaseConfig.Name = P.Name;
  uint32_t Track = 0;
  if (Obs)
    Track = Obs->Trace.allocTrack(P.Name + "/workflow");

  // Notes one rejected pick: status record, log line (message formats are
  // load-bearing for callers that grep the log), reason counter, event.
  auto Reject = [&](StatusCode Code, std::string Message) {
    Outcome.Log.push_back(Message);
    countPackageRejected(Obs, Code);
    if (Obs)
      Obs->Trace.instant(
          "package-reject", "package", Track,
          {strFormat("reason=%s", support::statusCodeName(Code))});
    Outcome.Rejections.push_back(Status::error(Code, std::move(Message)));
  };

  auto BootWithoutJumpStart = [&](const char *Why) {
    Outcome.Log.push_back(
        strFormat("booting without Jump-Start: %s", Why));
    if (Obs)
      Obs->Trace.instant("fallback-boot", "package", Track,
                         {strFormat("why=%s", Why)});
    Outcome.Server =
        std::make_unique<vm::Server>(W.Repo, BaseConfig, R.next());
    Outcome.Init = Outcome.Server->startup();
    Outcome.UsedJumpStart = false;
  };

  if (!Opts.Enabled) {
    BootWithoutJumpStart("disabled by configuration");
    return Outcome;
  }

  while (Outcome.Attempts < Opts.MaxConsumerAttempts) {
    ++Outcome.Attempts;
    PackageHandle Pick;
    support::Status Picked = Manager.pickRandom(P.Region, P.Bucket, R, Pick);
    uint32_t PickIndex = Pick.Manifest.Id.Index;
    if (!Picked.ok()) {
      Outcome.Rejections.push_back(Picked);
      countPackageRejected(Obs, Picked.code());
      BootWithoutJumpStart(Picked.message().c_str());
      return Outcome;
    }

    profile::ProfilePackage Pkg;
    if (!profile::ProfilePackage::deserialize(*Pick.Blob, Pkg)) {
      Reject(StatusCode::CorruptData,
             strFormat(
                 "package #%u is corrupt (checksum/format); trying another",
                 PickIndex));
      continue;
    }

    // Strict semantic lint at accept time: reject inconsistent profile
    // data *before* it can steer region selection or property layout.
    // Rejection is cheap relative to the mis-compilations a poisonous
    // package causes, and another package (or no package) is always a
    // safe fallback.  Packages from a different code version are not
    // lintable against this repo; installPackage rejects those by
    // fingerprint below.
    if (Opts.StrictPackageLint &&
        Pkg.RepoFingerprint == vm::Server::repoFingerprint(W.Repo)) {
      analysis::Linter Linter(W.Repo,
                              static_cast<uint32_t>(
                                  runtime::BuiltinTable::standard().size()));
      // With the whole-program analysis enabled, the lint also
      // cross-checks profiled call targets/arcs against the static call
      // graph (the facts already paid for themselves at boot).
      std::vector<analysis::Diagnostic> Diags =
          Linter.lintPackage(Pkg, Opts.ProvenGuardElision);
      if (analysis::countErrors(Diags) > 0) {
        Reject(StatusCode::LintFailed,
               strFormat("package #%u failed strict lint (%zu errors, "
                         "first: %s); trying another",
                         PickIndex, analysis::countErrors(Diags),
                         Diags.front().str(&W.Repo).c_str()));
        continue;
      }
    }

    // A crash-inducing package that slipped through validation: the
    // process dies during JIT compilation and restarts, picking a
    // (probably different) random package.
    if (Chaos && Chaos->crashesInProduction(Pkg)) {
      ++Outcome.CrashCount;
      Reject(StatusCode::CrashDetected,
             strFormat("crashed with package #%u; restarting",
                       PickIndex));
      continue;
    }

    auto Server =
        std::make_unique<vm::Server>(W.Repo, BaseConfig, R.next());
    support::Status Installed = Server->installPackage(Pkg);
    if (!Installed.ok()) {
      Reject(Installed.code(),
             strFormat("package #%u rejected (%s); trying another",
                       PickIndex, Installed.message().c_str()));
      continue;
    }
    Outcome.Init = Server->startup();
    Outcome.Server = std::move(Server);
    Outcome.UsedJumpStart = true;
    Outcome.Log.push_back(
        strFormat("booted with package #%u", PickIndex));
    countPackageAccepted(Obs);
    if (Obs)
      Obs->Trace.instant("package-accept", "package", Track,
                         {strFormat("index=%u", PickIndex)});
    return Outcome;
  }

  BootWithoutJumpStart("repeatedly failed to start healthily");
  return Outcome;
}
