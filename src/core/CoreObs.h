//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared observability vocabulary for the Jump-Start package lifecycle:
/// every seeder/consumer decision about a package is counted under the
/// same metric names, with the rejection reason drawn from the Status
/// code's stable snake_case name.  The reliability analyses (and the
/// corrupt-package tests) read these counters back.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_CORE_COREOBS_H
#define JUMPSTART_CORE_COREOBS_H

#include "obs/Observability.h"
#include "support/Status.h"

namespace jumpstart::core {

/// Counts one package rejection under its enumerated reason:
/// `jumpstart.package.rejected{reason=<code name>}`.  Null \p Obs ignores.
inline void countPackageRejected(obs::Observability *Obs,
                                 support::StatusCode Reason) {
  if (Obs)
    Obs->Metrics
        .counter("jumpstart.package.rejected",
                 {{"reason", support::statusCodeName(Reason)}})
        .inc();
}

/// Counts one package accepted by a consumer.
inline void countPackageAccepted(obs::Observability *Obs) {
  if (Obs)
    Obs->Metrics.counter("jumpstart.package.accepted").inc();
}

/// Counts one package published by a seeder.
inline void countPackagePublished(obs::Observability *Obs) {
  if (Obs)
    Obs->Metrics.counter("jumpstart.package.published").inc();
}

} // namespace jumpstart::core

#endif // JUMPSTART_CORE_COREOBS_H
