//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fleet-facing Jump-Start configuration.
///
/// These correspond to HHVM runtime options: the master enable switch
/// (paper section VI: "a simple configuration option to disable
/// Jump-Start ... as a last resort"), the per-optimization switches the
/// Figure 6 ablation toggles, and the validation/fallback thresholds of
/// section VI.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_CORE_JUMPSTARTOPTIONS_H
#define JUMPSTART_CORE_JUMPSTARTOPTIONS_H

#include "profile/Validation.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace jumpstart::core {

/// All Jump-Start knobs.  Plain default construction stays valid (the
/// fleet's production defaults); harnesses that accept user input go
/// through set()/parseAssignments() or the builder and check validate().
struct JumpStartOptions {
  /// Master switch.  Off: every server collects its own profile.
  bool Enabled = true;

  // Steady-state optimizations built on Jump-Start (paper section V).
  /// V-A: drive block layout with seeder-collected Vasm counters.
  bool VasmBlockCounters = true;
  /// V-B: place functions using the seeder-computed (tier-2 call graph)
  /// order.
  bool FunctionOrder = true;
  /// V-C: reorder object properties by access hotness.
  bool PropertyReordering = true;
  /// V-C future work: order properties by co-access affinity instead of
  /// hotness (requires affinity counters in the package).
  bool AffinityPropertyOrder = false;

  // Reliability (paper section VI).
  /// Consumer restarts with Jump-Start before automatic no-Jump-Start
  /// fallback.
  uint32_t MaxConsumerAttempts = 3;
  /// Coverage thresholds a package must pass before publication.
  profile::CoverageThresholds Coverage;
  /// Strict semantic linting of packages (analysis::lintPackage): the
  /// seeder refuses to publish, and the consumer refuses to accept, any
  /// package whose profile data is inconsistent with the bytecode repo.
  bool StrictPackageLint = true;
  /// Requests of the behavioural validation run (the seeder restarts
  /// itself in consumer mode and must stay healthy).
  uint32_t ValidationRequests = 40;
  /// Maximum tolerated faults per validation request.
  double MaxValidationFaultRate = 0.05;

  // Consumer precompile (retranslate-all) behaviour.  These mirror
  // jit::JitConfig fields; applyOptimizationOptions() copies them over
  // (see DESIGN.md "Options layering" for the full mapping).
  /// Cores the virtual cost model charges for the consumer's precompile
  /// pass (jit::JitConfig::Parallelism): 0 uses every modeled core,
  /// otherwise clamped to the server's core count.
  uint32_t Parallelism = 0;
  /// Also pre-lower the package's recorded live translations during the
  /// precompile pass (jit::JitConfig::PrecompileLiveCode).
  bool PrecompileLiveCode = false;

  // Whole-program static analysis driving the JIT.
  /// Compute interprocedural facts (analysis::WholeProgram) and act on
  /// them: elide provably-redundant guards, devirtualize
  /// proven-monomorphic virtual sites, and pre-seed interpreter inline
  /// caches at startup (jit::JitConfig::ProvenGuardElision).  Off by
  /// default; the conformance ablation matrix exercises both settings.
  bool ProvenGuardElision = false;

  //===--------------------------------------------------------------------===
  // Validated-options API.
  //===--------------------------------------------------------------------===

  /// Cross-field consistency diagnostics; empty means the options are
  /// coherent.  Never fires on a default-constructed value.
  std::vector<std::string> validate() const;

  /// Sets one option by its snake_case key ("enabled",
  /// "vasm_block_counters", "max_consumer_attempts", ...).  \returns
  /// invalid_argument for unknown keys or unparseable values.  See
  /// toKeyValues() for the full key list.
  support::Status set(std::string_view Key, std::string_view Value);

  /// Applies a comma- or whitespace-separated list of key=value
  /// assignments ("enabled=true,function_order=false").  Stops at the
  /// first error.
  support::Status parseAssignments(std::string_view Text);

  /// Every option as (key, value) pairs, in declaration order -- the
  /// round-trippable rendering (each pair feeds back through set()).
  std::vector<std::pair<std::string, std::string>> toKeyValues() const;
};

/// Named-setter construction for harness code:
///   auto Opts = JumpStartOptionsBuilder()
///                   .enabled(true)
///                   .functionOrder(false)
///                   .build();
/// build() asserts validate() passes; tryBuild() reports instead.
class JumpStartOptionsBuilder {
public:
  JumpStartOptionsBuilder &enabled(bool V);
  JumpStartOptionsBuilder &vasmBlockCounters(bool V);
  JumpStartOptionsBuilder &functionOrder(bool V);
  JumpStartOptionsBuilder &propertyReordering(bool V);
  JumpStartOptionsBuilder &affinityPropertyOrder(bool V);
  JumpStartOptionsBuilder &maxConsumerAttempts(uint32_t V);
  JumpStartOptionsBuilder &coverage(const profile::CoverageThresholds &V);
  JumpStartOptionsBuilder &strictPackageLint(bool V);
  JumpStartOptionsBuilder &validationRequests(uint32_t V);
  JumpStartOptionsBuilder &maxValidationFaultRate(double V);
  JumpStartOptionsBuilder &parallelism(uint32_t V);
  JumpStartOptionsBuilder &precompileLiveCode(bool V);
  JumpStartOptionsBuilder &provenGuardElision(bool V);

  /// \returns the built options; asserts they validate.
  JumpStartOptions build() const;
  /// \returns failed_precondition carrying the first diagnostic when the
  /// options are incoherent.
  support::Status tryBuild(JumpStartOptions &Out) const;

private:
  JumpStartOptions Opts;
};

} // namespace jumpstart::core

#endif // JUMPSTART_CORE_JUMPSTARTOPTIONS_H
