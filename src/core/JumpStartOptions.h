//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fleet-facing Jump-Start configuration.
///
/// These correspond to HHVM runtime options: the master enable switch
/// (paper section VI: "a simple configuration option to disable
/// Jump-Start ... as a last resort"), the per-optimization switches the
/// Figure 6 ablation toggles, and the validation/fallback thresholds of
/// section VI.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_CORE_JUMPSTARTOPTIONS_H
#define JUMPSTART_CORE_JUMPSTARTOPTIONS_H

#include "profile/Validation.h"

#include <cstdint>

namespace jumpstart::core {

/// All Jump-Start knobs.
struct JumpStartOptions {
  /// Master switch.  Off: every server collects its own profile.
  bool Enabled = true;

  // Steady-state optimizations built on Jump-Start (paper section V).
  /// V-A: drive block layout with seeder-collected Vasm counters.
  bool VasmBlockCounters = true;
  /// V-B: place functions using the seeder-computed (tier-2 call graph)
  /// order.
  bool FunctionOrder = true;
  /// V-C: reorder object properties by access hotness.
  bool PropertyReordering = true;
  /// V-C future work: order properties by co-access affinity instead of
  /// hotness (requires affinity counters in the package).
  bool AffinityPropertyOrder = false;

  // Reliability (paper section VI).
  /// Consumer restarts with Jump-Start before automatic no-Jump-Start
  /// fallback.
  uint32_t MaxConsumerAttempts = 3;
  /// Coverage thresholds a package must pass before publication.
  profile::CoverageThresholds Coverage;
  /// Strict semantic linting of packages (analysis::lintPackage): the
  /// seeder refuses to publish, and the consumer refuses to accept, any
  /// package whose profile data is inconsistent with the bytecode repo.
  bool StrictPackageLint = true;
  /// Requests of the behavioural validation run (the seeder restarts
  /// itself in consumer mode and must stay healthy).
  uint32_t ValidationRequests = 40;
  /// Maximum tolerated faults per validation request.
  double MaxValidationFaultRate = 0.05;
};

} // namespace jumpstart::core

#endif // JUMPSTART_CORE_JUMPSTARTOPTIONS_H
