//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The staleness-under-drift sweep (paper section VI-B: "profile data
/// collected on one release is used to Jump-Start the next").
///
/// The sweep grows one seeder package on release 0 of the drifting
/// synthetic site, then for each package age A it:
///   1. generates release A (fleet::generateDriftedWorkload -- renames,
///      splits, additions, hotness rotation accumulate per release);
///   2. rebases the release-0 package onto release A by symbol name
///      (profile::rebasePackage), counting the mapping attrition;
///   3. publishes it through core::PackageManager -- the base release as
///      a full package, every later age as a delta against the previous
///      age's bytes -- and reconstructs it back, verifying the round
///      trip;
///   4. boots a consumer against the shelf (install must go through the
///      standard lint + fingerprint gate) and runs the warmup simulation
///      with and without the rebased package.
///
/// The per-age result quantifies how much Jump-Start benefit survives N
/// releases of code drift: the paper's answer ("substantial, and decays
/// gracefully") is the reproduction's acceptance target.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_CORE_DRIFTSWEEP_H
#define JUMPSTART_CORE_DRIFTSWEEP_H

#include "core/PackageManager.h"
#include "fleet/ServerSim.h"
#include "fleet/WarmupStats.h"
#include "fleet/WorkloadGen.h"
#include "profile/PackageRebase.h"
#include "support/Status.h"
#include "vm/Server.h"

#include <string>
#include <vector>

namespace jumpstart::core {

/// Drift-sweep knobs.  Defaults are sized for the committed
/// BENCH_package.json run; QuickMode shrinks everything for CI.
struct DriftSweepParams {
  fleet::WorkloadParams Site;
  fleet::DriftParams Drift;
  /// Ages to evaluate: 0 (fresh) .. MaxAge releases of drift.
  uint32_t MaxAge = 4;
  /// Requests the release-0 seeder serves before package extraction.
  uint32_t SeederRequests = 1200;
  /// Warmup-simulation window per (age, arm).
  double WarmupSeconds = 240;
  double OfferedRps = 340;
  uint64_t Seed = 12;
  /// Publish ages >= 1 as delta packages against the previous age.
  bool UseDeltaPackages = true;
  vm::ServerConfig Config;
  obs::Observability *Obs = nullptr;
};

/// One age's measurement.
struct DriftAgePoint {
  /// Releases between profile collection and the code it boots.
  uint32_t Age = 0;
  /// Did the consumer accept the rebased package (lint + fingerprint)?
  bool ConsumerUsedJumpStart = false;
  uint32_t ConsumerAttempts = 0;
  /// Rebase attrition bookkeeping for this age.
  profile::RebaseStats Rebase;
  /// Functions profiled in the rebased package.
  size_t ProfiledFuncs = 0;
  /// Serialized size of the rebased package.
  size_t PackageBytes = 0;
  /// Wire bytes actually shipped: delta size for ages published as
  /// deltas, full size otherwise.
  size_t WireBytes = 0;
  /// Warmup capacity loss with / without the rebased package.
  double CapacityLossWith = 0;
  double CapacityLossWithout = 0;
  /// 1 - With/Without: the surviving Jump-Start benefit.
  double BenefitFraction = 0;
  /// Changepoint classification of the virtual-time normalized-RPS
  /// curves (fleet::classifyWarmupThroughput): the cold boot should
  /// read `warmup`, the Jump-Start boot `flat` -- or at least reach
  /// steady state earlier.
  stats::Classification ColdClass;
  stats::Classification WarmClass;
};

/// Sweep outcome.  Result is non-ok if any lifecycle step failed
/// (publish, reconstruct mismatch, rebase with zero surviving
/// functions); Points holds whatever ages completed.
struct DriftSweepResult {
  std::vector<DriftAgePoint> Points;
  support::Status Result = support::Status::okStatus();
  std::vector<std::string> Log;
};

/// Runs the sweep.
DriftSweepResult runDriftSweep(const DriftSweepParams &P);

} // namespace jumpstart::core

#endif // JUMPSTART_CORE_DRIFTSWEEP_H
