//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "core/Seeder.h"

#include "analysis/Linter.h"
#include "core/CoreObs.h"
#include "runtime/Builtins.h"
#include "support/StringUtil.h"

using namespace jumpstart;
using namespace jumpstart::core;
using support::Status;
using support::StatusCode;

SeederOutcome jumpstart::core::runSeederWorkflow(
    const fleet::Workload &W, const fleet::TrafficModel &Traffic,
    vm::ServerConfig BaseConfig, const JumpStartOptions &Opts,
    PackageManager &Manager, const SeederParams &P, const ChaosHooks *Chaos,
    obs::Observability *Obs) {
  SeederOutcome Outcome;

  std::string SeederName = strFormat("seeder-r%u-b%u-%llu", P.Region,
                                     P.Bucket,
                                     static_cast<unsigned long long>(
                                         P.SeederId));
  uint32_t Track = 0;
  if (Obs)
    Track = Obs->Trace.allocTrack(SeederName + "/workflow");
  obs::ScopedSpan Workflow(Obs ? &Obs->Trace : nullptr, "seeder-workflow",
                           "package", Track);

  // Fails the workflow: enumerated status, problem log, rejection
  // counter, trace event.
  auto Reject = [&](StatusCode Code, std::string Message) {
    Outcome.Problems.push_back(Message);
    Outcome.Result = Status::error(Code, std::move(Message));
    countPackageRejected(Obs, Code);
    if (Obs)
      Obs->Trace.instant(
          "package-reject", "package", Track,
          {strFormat("reason=%s", support::statusCodeName(Code))});
  };

  // 1. Serve traffic with seeder instrumentation enabled (Figure 3b: the
  //    optimized code carries extra counters).
  vm::ServerConfig SeederConfig = BaseConfig;
  SeederConfig.Jit.SeederInstrumentation = true;
  SeederConfig.Obs = Obs;
  SeederConfig.Name = SeederName;
  std::unique_ptr<vm::Server> Seeder;
  {
    obs::ScopedSpan Span(Obs ? &Obs->Trace : nullptr, "collect-profile",
                         "package", Track);
    Seeder = fleet::runSeeder(W, Traffic, SeederConfig, P.Region, P.Bucket,
                              P.Requests, P.Seed);
  }

  // 2. Serialize the profile data.
  Outcome.Package =
      Seeder->buildSeederPackage(P.Region, P.Bucket, P.SeederId);
  std::vector<uint8_t> Blob = Outcome.Package.serialize();
  Outcome.PackageBytes = Blob.size();

  // 3. Coverage validation (section VI-B): catch under-profiled seeders
  //    (e.g. a drained data center).
  profile::CoverageThresholds Coverage = Opts.Coverage;
  Coverage.ExpectedFingerprint = vm::Server::repoFingerprint(W.Repo);
  profile::CoverageResult CoverageCheck =
      profile::checkCoverage(Outcome.Package, Blob.size(), Coverage);
  if (!CoverageCheck.ok()) {
    Outcome.Problems = CoverageCheck.Problems;
    Outcome.Result = CoverageCheck.status();
    countPackageRejected(Obs, CoverageCheck.code());
    if (Obs)
      Obs->Trace.instant("package-reject", "package", Track,
                         {strFormat("reason=%s", support::statusCodeName(
                                                     CoverageCheck.code()))});
    return Outcome;
  }

  // 3b. Strict semantic lint (the static half of section VI-B): a
  //     checksum-clean package can still carry profile data inconsistent
  //     with the repo; refuse to publish it.
  if (Opts.StrictPackageLint) {
    analysis::Linter Linter(
        W.Repo, static_cast<uint32_t>(runtime::BuiltinTable::standard().size()));
    std::vector<analysis::Diagnostic> Diags =
        Linter.lintPackage(Outcome.Package);
    if (analysis::countErrors(Diags) > 0) {
      Reject(StatusCode::LintFailed,
             "package lint: " + Diags.front().str(&W.Repo));
      for (size_t I = 1; I < Diags.size(); ++I)
        Outcome.Problems.push_back("package lint: " +
                                   Diags[I].str(&W.Repo));
      return Outcome;
    }
  }

  // 4. Behavioural validation (section VI-A technique 1): restart in
  //    consumer mode using the just-collected data and watch health for a
  //    while before publishing.
  obs::ScopedSpan ValidateSpan(Obs ? &Obs->Trace : nullptr, "validate",
                               "package", Track);
  if (Chaos && Chaos->crashesInValidation(Outcome.Package)) {
    Reject(StatusCode::ValidationCrash,
           "validation: consumer-mode restart crashed during JIT "
           "compilation");
    return Outcome;
  }
  vm::ServerConfig ValidationConfig = BaseConfig;
  ValidationConfig.Jit.SeederInstrumentation = false;
  ValidationConfig.Obs = Obs;
  ValidationConfig.Name = SeederName + "/validator";
  vm::Server Validator(W.Repo, ValidationConfig, P.Seed ^ 0xabcdef);
  support::Status InstallStatus = Validator.installPackage(Outcome.Package);
  if (!InstallStatus.ok()) {
    Reject(InstallStatus.code(),
           "validation: package rejected (" + InstallStatus.message() + ")");
    return Outcome;
  }
  Validator.startup();
  Rng R(P.Seed ^ 0x1234);
  uint64_t FaultsBefore = Validator.totalFaults();
  for (uint32_t I = 0; I < Opts.ValidationRequests; ++I) {
    uint32_t E = Traffic.sampleEndpoint(P.Region, P.Bucket, R);
    Validator.executeRequest(W.Endpoints[E],
                             fleet::TrafficModel::makeArgs(R));
  }
  uint64_t Faults = Validator.totalFaults() - FaultsBefore;
  double FaultRate = Opts.ValidationRequests
                         ? static_cast<double>(Faults) /
                               static_cast<double>(Opts.ValidationRequests)
                         : 0.0;
  if (FaultRate > Opts.MaxValidationFaultRate) {
    Reject(StatusCode::ValidationFaultRate,
           strFormat("validation: elevated error rate (%.3f "
                     "faults/request, limit %.3f)",
                     FaultRate, Opts.MaxValidationFaultRate));
    return Outcome;
  }

  // 5. Publish.
  Status PublishStatus =
      Manager.publish(P.Region, P.Bucket, std::move(Blob), &Outcome.Manifest);
  if (!PublishStatus.ok()) {
    Reject(PublishStatus.code(),
           "publish: " + PublishStatus.message());
    return Outcome;
  }
  Outcome.PackageIndex = Outcome.Manifest.Id.Index;
  Outcome.Published = true;
  Outcome.Result = Status::okStatus();
  countPackagePublished(Obs);
  if (Obs)
    Obs->Trace.instant("package-publish", "package", Track,
                       {strFormat("index=%u", Outcome.PackageIndex),
                        strFormat("bytes=%zu", Outcome.PackageBytes)});
  return Outcome;
}
