//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "core/Seeder.h"

#include "analysis/Linter.h"
#include "runtime/Builtins.h"
#include "support/StringUtil.h"

using namespace jumpstart;
using namespace jumpstart::core;

SeederOutcome jumpstart::core::runSeederWorkflow(
    const fleet::Workload &W, const fleet::TrafficModel &Traffic,
    vm::ServerConfig BaseConfig, const JumpStartOptions &Opts,
    PackageStore &Store, const SeederParams &P, const ChaosHooks *Chaos) {
  SeederOutcome Outcome;

  // 1. Serve traffic with seeder instrumentation enabled (Figure 3b: the
  //    optimized code carries extra counters).
  vm::ServerConfig SeederConfig = BaseConfig;
  SeederConfig.Jit.SeederInstrumentation = true;
  std::unique_ptr<vm::Server> Seeder =
      fleet::runSeeder(W, Traffic, SeederConfig, P.Region, P.Bucket,
                       P.Requests, P.Seed);

  // 2. Serialize the profile data.
  Outcome.Package =
      Seeder->buildSeederPackage(P.Region, P.Bucket, P.SeederId);
  std::vector<uint8_t> Blob = Outcome.Package.serialize();
  Outcome.PackageBytes = Blob.size();

  // 3. Coverage validation (section VI-B): catch under-profiled seeders
  //    (e.g. a drained data center).
  profile::CoverageThresholds Coverage = Opts.Coverage;
  Coverage.ExpectedFingerprint = vm::Server::repoFingerprint(W.Repo);
  profile::CoverageResult CoverageCheck =
      profile::checkCoverage(Outcome.Package, Blob.size(), Coverage);
  if (!CoverageCheck.Ok) {
    Outcome.Problems = CoverageCheck.Problems;
    return Outcome;
  }

  // 3b. Strict semantic lint (the static half of section VI-B): a
  //     checksum-clean package can still carry profile data inconsistent
  //     with the repo; refuse to publish it.
  if (Opts.StrictPackageLint) {
    analysis::Linter Linter(
        W.Repo, static_cast<uint32_t>(runtime::BuiltinTable::standard().size()));
    std::vector<analysis::Diagnostic> Diags =
        Linter.lintPackage(Outcome.Package);
    if (analysis::countErrors(Diags) > 0) {
      for (const analysis::Diagnostic &D : Diags)
        Outcome.Problems.push_back("package lint: " + D.str(&W.Repo));
      return Outcome;
    }
  }

  // 4. Behavioural validation (section VI-A technique 1): restart in
  //    consumer mode using the just-collected data and watch health for a
  //    while before publishing.
  if (Chaos && Chaos->crashesInValidation(Outcome.Package)) {
    Outcome.Problems.push_back(
        "validation: consumer-mode restart crashed during JIT compilation");
    return Outcome;
  }
  vm::ServerConfig ValidationConfig = BaseConfig;
  ValidationConfig.Jit.SeederInstrumentation = false;
  vm::Server Validator(W.Repo, ValidationConfig, P.Seed ^ 0xabcdef);
  if (!Validator.installPackage(Outcome.Package)) {
    Outcome.Problems.push_back(
        "validation: package rejected (fingerprint mismatch)");
    return Outcome;
  }
  Validator.startup();
  Rng R(P.Seed ^ 0x1234);
  uint64_t FaultsBefore = Validator.totalFaults();
  for (uint32_t I = 0; I < Opts.ValidationRequests; ++I) {
    uint32_t E = Traffic.sampleEndpoint(P.Region, P.Bucket, R);
    Validator.executeRequest(W.Endpoints[E],
                             fleet::TrafficModel::makeArgs(R));
  }
  uint64_t Faults = Validator.totalFaults() - FaultsBefore;
  double FaultRate = Opts.ValidationRequests
                         ? static_cast<double>(Faults) /
                               static_cast<double>(Opts.ValidationRequests)
                         : 0.0;
  if (FaultRate > Opts.MaxValidationFaultRate) {
    Outcome.Problems.push_back(strFormat(
        "validation: elevated error rate (%.3f faults/request, limit "
        "%.3f)",
        FaultRate, Opts.MaxValidationFaultRate));
    return Outcome;
  }

  // 5. Publish.
  Outcome.PackageIndex = Store.publish(P.Region, P.Bucket, std::move(Blob));
  Outcome.Published = true;
  return Outcome;
}
