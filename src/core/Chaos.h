//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fault injection for reliability experiments (paper section VI).
///
/// The paper's failure mode is a profile package that triggers a latent
/// JIT bug.  Whether a given package trips the bug -- and whether the
/// seeder's validation environment reproduces it -- is injected here, so
/// experiments can model bugs that only manifest under full production
/// traffic (the reason validation is necessary but insufficient, and why
/// randomized selection and fallback exist).
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_CORE_CHAOS_H
#define JUMPSTART_CORE_CHAOS_H

#include "profile/ProfilePackage.h"

#include <functional>

namespace jumpstart::core {

/// Injection points for reliability experiments.  Default-constructed
/// hooks inject nothing.
struct ChaosHooks {
  /// Does compiling/running with this package crash during the seeder's
  /// validation run?
  std::function<bool(const profile::ProfilePackage &)> CrashesInValidation;
  /// Does it crash a production consumer?
  std::function<bool(const profile::ProfilePackage &)> CrashesInProduction;

  bool crashesInValidation(const profile::ProfilePackage &Pkg) const {
    return CrashesInValidation && CrashesInValidation(Pkg);
  }
  bool crashesInProduction(const profile::ProfilePackage &Pkg) const {
    return CrashesInProduction && CrashesInProduction(Pkg);
  }
};

} // namespace jumpstart::core

#endif // JUMPSTART_CORE_CHAOS_H
