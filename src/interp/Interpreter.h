//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode interpreter: the VM's semantic core and execution tier of
/// last resort (paper section II-A).
///
/// Semantics are total: dynamic type errors produce Null results and bump a
/// fault counter rather than aborting, so the VM survives anything the
/// workload generator or fuzz tests produce.  Runaway execution is bounded
/// by a step budget and a call-depth limit.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_INTERP_INTERPRETER_H
#define JUMPSTART_INTERP_INTERPRETER_H

#include "bytecode/BlockCache.h"
#include "bytecode/Repo.h"
#include "interp/ExecCallbacks.h"
#include "interp/InterpCache.h"
#include "runtime/Builtins.h"
#include "runtime/ClassLayout.h"
#include "runtime/Heap.h"
#include "runtime/Value.h"

#include <string>
#include <vector>

namespace jumpstart::interp {

/// Outcome of one top-level call.
struct InterpResult {
  runtime::Value Ret;
  /// False when the step budget or call-depth limit was hit.
  bool Ok = true;
  /// Bytecode instructions executed (across all frames).
  uint64_t Steps = 0;
  /// Dynamic type errors that produced Null results.
  uint64_t Faults = 0;
};

/// Which execution engine frames run on.  Both are observably identical
/// (same results, faults, step accounting, callback streams); they differ
/// only in speed.  The differential conformance harness (src/testing)
/// keeps them honest by diffing full execution digests across engines.
enum class InterpEngine : uint8_t {
  /// Threaded dispatch, arena frames, interned strings, inline caches,
  /// per-run step accounting.  Falls back to Legacy per function when
  /// static frame analysis fails (see interp/InterpCache.h).
  Fast,
  /// The original switch loop with per-instruction checks and
  /// vector-backed frames.  Kept as the semantic reference and the
  /// baseline the benchmarks measure against.
  Legacy,
};

/// Interpreter configuration.
struct InterpOptions {
  uint64_t StepBudget = 100'000'000;
  uint32_t MaxCallDepth = 200;
  InterpEngine Engine = InterpEngine::Fast;
  /// Test-only fault injection: added to every integer Add result.  The
  /// differential conformance oracle (src/testing) uses a nonzero skew to
  /// prove it can detect a single-opcode semantic divergence between two
  /// otherwise identical configurations.  Must be 0 in production.
  int64_t TestOnlyIntAddSkew = 0;
};

/// Executes bytecode against the runtime.  One instance per simulated
/// server; requests share it but reset the heap between requests.
class Interpreter {
public:
  Interpreter(const bc::Repo &R, runtime::ClassTable &Classes,
              runtime::Heap &H, const runtime::BuiltinTable &Builtins,
              InterpOptions Opts = InterpOptions());

  /// Attaches (or detaches, with nullptr) observation callbacks.
  void setCallbacks(ExecCallbacks *CB) { Callbacks = CB; }

  /// When set, element I accumulates the number of instructions executed
  /// in function with raw id I (the VM's per-tier cost model reads this).
  void setInstrCounts(std::vector<uint64_t> *Counts) { InstrCounts = Counts; }

  /// Print-builtin output sink for the current request; may be null.
  void setOutput(std::string *Out) { Output = Out; }

  /// Calls function \p F with \p Args.  The heap is NOT reset; the caller
  /// owns request boundaries.
  InterpResult call(bc::FuncId F, const std::vector<runtime::Value> &Args);

  const bc::Repo &repo() const { return R; }
  runtime::Heap &heap() { return H; }
  runtime::ClassTable &classes() { return Classes; }

  /// Fast-engine metadata and inline-cache statistics (deterministic;
  /// the perf smoke compares them across runs).
  const InterpCaches &caches() const { return Caches; }

  /// Pre-fills the inline cache at (F, Pc) with a proven-monomorphic
  /// entry (whole-program analysis; ProvenFacts::ICSeeds).  Caches only
  /// what a successful dynamic lookup would cache: the caller supplies
  /// the receiver's ClassLayout as \p Key and the resolved slot/FuncId
  /// as \p Payload.  \returns true when an empty entry was filled; a
  /// legacy-engine function, an out-of-range site or an already-warm
  /// entry is left untouched.
  bool seedIC(bc::FuncId F, uint32_t Pc, const void *Key, uint64_t Payload);

private:
  runtime::Value execFrame(bc::FuncId FId, const runtime::Value *Args,
                           uint32_t NumArgs, runtime::Value This,
                           bc::FuncId Caller, uint32_t Depth);
  runtime::Value execFrameLegacy(const bc::Function &F, bc::FuncId FId,
                                 const runtime::Value *Args, uint32_t NumArgs,
                                 runtime::Value This, bc::FuncId Caller,
                                 uint32_t Depth);
  /// The fast engine's frame loop.  Instrumented is the per-frame
  /// hoisted "Callbacks != nullptr" decision: the uninstrumented
  /// instantiation contains no callback code at all.
  template <bool Instrumented>
  runtime::Value execFrameFast(const bc::Function &F, FuncExecInfo &Info,
                               bc::FuncId FId, const runtime::Value *Args,
                               uint32_t NumArgs, runtime::Value This,
                               bc::FuncId Caller, uint32_t Depth);
  /// Call entry used by fast-engine call sites: identical to execFrame
  /// but skips the engine-selection and callback tests, both of which
  /// the calling frame already resolved (the engine cannot change
  /// mid-request and Instrumented carries the callback decision).
  template <bool Instrumented>
  runtime::Value callFast(bc::FuncId FId, const runtime::Value *Args,
                          uint32_t NumArgs, runtime::Value This,
                          bc::FuncId Caller, uint32_t Depth);
  runtime::Value fault();

  const bc::Repo &R;
  runtime::ClassTable &Classes;
  runtime::Heap &H;
  const runtime::BuiltinTable &Builtins;
  InterpOptions Opts;
  bc::BlockCache Blocks;
  InterpCaches Caches;

  ExecCallbacks *Callbacks = nullptr;
  std::vector<uint64_t> *InstrCounts = nullptr;
  std::string *Output = nullptr;

  // Per-call (reset in call()).
  uint64_t Steps = 0;
  uint64_t Faults = 0;
  bool Aborted = false;
};

} // namespace jumpstart::interp

#endif // JUMPSTART_INTERP_INTERPRETER_H
