//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-function execution metadata for the fast interpreter engine.
///
/// The fast engine (interp/Interpreter.cpp) relies on three pieces of
/// statically derived information per function, computed once on first
/// execution and cached here:
///
///  - Run lengths for bulk step accounting: a "run" is the straight-line
///    instruction sequence ending at (and including) the next
///    branch/terminal/call.  Charging a whole run against the step budget
///    at its first instruction is exactly equivalent to the legacy
///    per-instruction check: a run, once entered, executes completely, and
///    because calls end runs the global step counter agrees with the
///    legacy engine's at every callee entry and every abort point.
///
///  - The maximum operand-stack depth, from the same abstract
///    interpretation the verifier performs.  It lets a frame's locals and
///    stack be carved out of the request FrameArena in one allocation
///    with no per-push growth checks.  Functions whose analysis fails
///    (unverifiable code reached via fuzzing) set HasStaticStack = false
///    and execute on the legacy engine, which handles anything.
///
///  - Inline caches for property and method dispatch sites, keyed by the
///    receiver's ClassLayout.  They live here, outside the immutable
///    bytecode, in a side table indexed by Pc.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_INTERP_INTERPCACHE_H
#define JUMPSTART_INTERP_INTERPCACHE_H

#include "bytecode/Repo.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace jumpstart::interp {

/// One monomorphic inline cache.  For GetProp/SetProp sites Key is the
/// receiver's ClassLayout and Payload the physical slot; for FCallObj
/// sites Key is the layout and Payload the resolved raw FuncId.  A null
/// Key means the site has not yet cached a successful lookup; negative
/// lookups are never cached.
struct ICEntry {
  const void *Key = nullptr;
  uint64_t Payload = 0;
};

/// Static execution metadata for one function (see file comment).
struct FuncExecInfo {
  /// RunLen[I]: instructions from I through the end of I's run,
  /// inclusive.  Empty when !HasStaticStack.
  std::vector<uint32_t> RunLen;

  /// Inline caches indexed by Pc.  Empty when !HasStaticStack or the
  /// function has no cacheable site.
  std::vector<ICEntry> ICs;

  /// Maximum operand-stack depth over all paths.
  uint32_t MaxStack = 0;

  /// True when the static analysis succeeded (branch targets in range,
  /// control cannot fall off the end, stack depths consistent).  False
  /// sends frames of this function to the legacy engine.
  bool HasStaticStack = false;
};

/// Computes FuncExecInfo for \p F (exposed for tests).
FuncExecInfo computeExecInfo(const bc::Function &F);

/// Caches FuncExecInfo per FuncId, plus deterministic inline-cache hit
/// statistics.  One instance per Interpreter; not thread-safe, matching
/// the single-threaded simulated servers.
class InterpCaches {
public:
  explicit InterpCaches(const bc::Repo &R) : R(R) {}

  /// The (lazily computed) execution metadata for \p F.
  FuncExecInfo &info(bc::FuncId F) {
    if (Cache.size() < R.numFuncs())
      Cache.resize(R.numFuncs());
    auto &Slot = Cache[F.raw()];
    if (!Slot)
      Slot = std::make_unique<FuncExecInfo>(computeExecInfo(R.func(F)));
    return *Slot;
  }

  /// Deterministic counters (bumped only by the fast engine; the bench
  /// and CI perf smoke compare them byte-for-byte across runs).
  uint64_t ICHits = 0;
  uint64_t ICMisses = 0;

private:
  const bc::Repo &R;
  std::vector<std::unique_ptr<FuncExecInfo>> Cache;
};

} // namespace jumpstart::interp

#endif // JUMPSTART_INTERP_INTERPCACHE_H
