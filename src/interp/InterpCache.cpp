//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "interp/InterpCache.h"

#include "bytecode/Blocks.h"

#include <algorithm>
#include <deque>

using namespace jumpstart;
using namespace jumpstart::interp;

namespace {

/// A run ends at any instruction after which control may leave the
/// straight line: branches and returns transfer control, and calls hand
/// the step counter to a callee (so charging must stop there for the
/// callee to observe the same count as under per-instruction checking).
bool endsRun(bc::Op O) {
  bc::OpFlags F = bc::opInfo(O).Flags;
  return bc::hasFlag(F, bc::OpFlags::Branch) ||
         bc::hasFlag(F, bc::OpFlags::CondBranch) ||
         bc::hasFlag(F, bc::OpFlags::Terminal) ||
         bc::hasFlag(F, bc::OpFlags::Call);
}

bool hasCacheableSite(const bc::Function &F) {
  for (const bc::Instr &In : F.Code)
    if (In.Opcode == bc::Op::GetProp || In.Opcode == bc::Op::SetProp ||
        In.Opcode == bc::Op::FCallObj)
      return true;
  return false;
}

/// Preconditions for the CFG-based analysis (and for BlockList::compute,
/// which assumes verified code): all branch targets in range and control
/// unable to fall off the end.
bool structurallySound(const bc::Function &F) {
  if (F.Code.empty())
    return false;
  const bc::OpInfo &Last = bc::opInfo(F.Code.back().Opcode);
  if (!bc::hasFlag(Last.Flags, bc::OpFlags::Terminal) &&
      !bc::hasFlag(Last.Flags, bc::OpFlags::Branch))
    return false;
  for (const bc::Instr &In : F.Code) {
    const bc::OpInfo &Info = bc::opInfo(In.Opcode);
    if ((Info.ImmA == bc::ImmKind::Target &&
         static_cast<uint64_t>(In.ImmA) >= F.Code.size()) ||
        (Info.ImmB == bc::ImmKind::Target &&
         static_cast<uint64_t>(In.ImmB) >= F.Code.size()))
      return false;
    if (In.Opcode == bc::Op::GetL || In.Opcode == bc::Op::SetL)
      if (In.localImm() >= F.NumLocals)
        return false;
  }
  return true;
}

/// Verifier-style abstract interpretation of stack depth.  \returns true
/// and sets \p MaxStack on success; false when depths underflow or are
/// inconsistent (such functions run on the legacy engine).
bool computeMaxStack(const bc::Function &F, uint32_t &MaxStack) {
  bc::BlockList Blocks = bc::BlockList::compute(F);
  constexpr int kUnknown = -1;
  std::vector<int> EntryDepth(Blocks.numBlocks(), kUnknown);
  EntryDepth[0] = 0;
  std::deque<uint32_t> Worklist;
  Worklist.push_back(0);
  int Max = 0;

  while (!Worklist.empty()) {
    uint32_t BlockId = Worklist.front();
    Worklist.pop_front();
    const bc::BcBlock &B = Blocks.block(BlockId);
    int Depth = EntryDepth[BlockId];
    for (uint32_t I = B.Start; I < B.End; ++I) {
      const bc::Instr &In = F.Code[I];
      if (Depth < bc::instrStackPops(In))
        return false;
      Depth += bc::instrStackDelta(In);
      Max = std::max(Max, Depth);
      if (In.Opcode == bc::Op::RetC && Depth != 0)
        return false;
    }
    auto Propagate = [&](uint32_t Succ) {
      if (EntryDepth[Succ] == kUnknown) {
        EntryDepth[Succ] = Depth;
        Worklist.push_back(Succ);
        return true;
      }
      return EntryDepth[Succ] == Depth;
    };
    if (B.hasTaken() && !Propagate(B.Taken))
      return false;
    if (B.hasFallthru() && !Propagate(B.Fallthru))
      return false;
  }
  MaxStack = static_cast<uint32_t>(Max);
  return true;
}

} // namespace

FuncExecInfo jumpstart::interp::computeExecInfo(const bc::Function &F) {
  FuncExecInfo Info;
  if (!structurallySound(F))
    return Info;
  if (!computeMaxStack(F, Info.MaxStack))
    return Info;
  Info.HasStaticStack = true;

  size_t N = F.Code.size();
  Info.RunLen.resize(N);
  for (size_t I = N; I-- > 0;)
    Info.RunLen[I] = (endsRun(F.Code[I].Opcode) || I + 1 == N)
                         ? 1
                         : Info.RunLen[I + 1] + 1;

  if (hasCacheableSite(F))
    Info.ICs.assign(N, ICEntry{});
  return Info;
}
