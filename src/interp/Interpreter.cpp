//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "runtime/ValueOps.h"
#include "support/Assert.h"

#include <cstring>

using namespace jumpstart;
using namespace jumpstart::interp;
using runtime::Value;

Interpreter::Interpreter(const bc::Repo &R, runtime::ClassTable &Classes,
                         runtime::Heap &H,
                         const runtime::BuiltinTable &Builtins,
                         InterpOptions Opts)
    : R(R), Classes(Classes), H(H), Builtins(Builtins), Opts(Opts),
      Blocks(R) {}

Value Interpreter::fault() {
  ++Faults;
  return Value::null();
}

InterpResult Interpreter::call(bc::FuncId F,
                               const std::vector<Value> &Args) {
  Steps = 0;
  Faults = 0;
  Aborted = false;
  InterpResult Result;
  Result.Ret = execFrame(F, Args.data(), static_cast<uint32_t>(Args.size()),
                         Value::null(), bc::FuncId(), /*Depth=*/0);
  Result.Ok = !Aborted;
  Result.Steps = Steps;
  Result.Faults = Faults;
  return Result;
}

Value Interpreter::execFrame(bc::FuncId FId, const Value *Args,
                             uint32_t NumArgs, Value This, bc::FuncId Caller,
                             uint32_t Depth) {
  if (Depth >= Opts.MaxCallDepth) {
    Aborted = true;
    return Value::null();
  }
  const bc::Function &F = R.func(FId);
  if (F.Code.empty())
    return fault();

  if (Callbacks)
    Callbacks->onFuncEnter(FId, Caller, Args, NumArgs);
  const bool TraceInstrs = Callbacks && Callbacks->wantsInstrTrace(FId);
  const bc::BlockList *BlockInfo = Callbacks ? &Blocks.blocks(FId) : nullptr;

  // Frame state.
  std::vector<Value> Locals(F.NumLocals, Value::null());
  for (uint32_t I = 0; I < NumArgs && I < F.NumLocals; ++I)
    Locals[I] = Args[I];
  std::vector<Value> Stack;
  Stack.reserve(16);
  uint64_t FrameSteps = 0;
  uint32_t CurBlock = ~0u;

  auto Push = [&](Value V) { Stack.push_back(V); };
  auto Pop = [&]() {
    assert(!Stack.empty() && "operand stack underflow (verifier bug)");
    Value V = Stack.back();
    Stack.pop_back();
    return V;
  };

  Value RetVal = Value::null();
  uint32_t Pc = 0;
  const size_t CodeSize = F.Code.size();

  while (Pc < CodeSize) {
    if (++Steps > Opts.StepBudget) {
      Aborted = true;
      break;
    }
    ++FrameSteps;

    if (Callbacks) {
      uint32_t Block = BlockInfo->blockOf(Pc);
      if (Block != CurBlock) {
        CurBlock = Block;
        Callbacks->onBlockEnter(FId, Block);
      }
      if (TraceInstrs)
        Callbacks->onInstr(FId, Pc, Depth);
    }

    const bc::Instr &In = F.Code[Pc];
    switch (In.Opcode) {
    case bc::Op::Nop:
      break;
    case bc::Op::Int:
      Push(Value::integer(In.ImmA));
      break;
    case bc::Op::Dbl: {
      double D;
      std::memcpy(&D, &In.ImmA, sizeof(D));
      Push(Value::dbl(D));
      break;
    }
    case bc::Op::True:
      Push(Value::boolean(true));
      break;
    case bc::Op::False:
      Push(Value::boolean(false));
      break;
    case bc::Op::Null:
      Push(Value::null());
      break;
    case bc::Op::Str:
      Push(Value::str(H.allocString(R.str(In.strImm()))));
      break;
    case bc::Op::NewVec:
      Push(Value::vec(H.allocVec()));
      break;
    case bc::Op::NewDict:
      Push(Value::dict(H.allocDict()));
      break;
    case bc::Op::AddElem: {
      Value V = Pop();
      Value C = Pop();
      if (!C.isVec()) {
        Push(fault());
        break;
      }
      C.V->Elems.push_back(V);
      if (Callbacks)
        Callbacks->onDataAccess(
            C.V->Addr + 16 * C.V->Elems.size(), /*IsWrite=*/true);
      Push(C);
      break;
    }
    case bc::Op::AddKeyElem: {
      Value V = Pop();
      Value K = Pop();
      Value C = Pop();
      if (!C.isDict()) {
        Push(fault());
        break;
      }
      runtime::DictKey Key = K.isStr()
                                 ? runtime::DictKey::fromStr(K.S->Data)
                                 : runtime::DictKey::fromInt(runtime::toInt(K));
      int64_t At = C.Dt->find(Key);
      if (At >= 0)
        C.Dt->Entries[static_cast<size_t>(At)].second = V;
      else
        C.Dt->Entries.emplace_back(std::move(Key), V);
      if (Callbacks)
        Callbacks->onDataAccess(C.Dt->Addr + 16 * C.Dt->Entries.size(),
                                /*IsWrite=*/true);
      Push(C);
      break;
    }
    case bc::Op::GetElem: {
      Value K = Pop();
      Value C = Pop();
      if (Callbacks)
        Callbacks->onTypeObserve(FId, Pc, C.T);
      if (C.isVec()) {
        int64_t Index = runtime::toInt(K);
        if (Index < 0 ||
            Index >= static_cast<int64_t>(C.V->Elems.size())) {
          Push(fault());
          break;
        }
        if (Callbacks)
          Callbacks->onDataAccess(C.V->Addr + 16 * (Index + 1),
                                  /*IsWrite=*/false);
        Push(C.V->Elems[static_cast<size_t>(Index)]);
        break;
      }
      if (C.isDict()) {
        runtime::DictKey Key =
            K.isStr() ? runtime::DictKey::fromStr(K.S->Data)
                      : runtime::DictKey::fromInt(runtime::toInt(K));
        int64_t At = C.Dt->find(Key);
        if (Callbacks)
          Callbacks->onDataAccess(C.Dt->Addr + 16 * (At >= 0 ? At + 1 : 1),
                                  /*IsWrite=*/false);
        if (At < 0) {
          Push(Value::null());
          break;
        }
        Push(C.Dt->Entries[static_cast<size_t>(At)].second);
        break;
      }
      Push(fault());
      break;
    }
    case bc::Op::SetElem: {
      Value V = Pop();
      Value K = Pop();
      Value C = Pop();
      if (Callbacks)
        Callbacks->onTypeObserve(FId, Pc, C.T);
      if (C.isVec()) {
        int64_t Index = runtime::toInt(K);
        int64_t Size = static_cast<int64_t>(C.V->Elems.size());
        if (Index == Size) {
          C.V->Elems.push_back(V);
        } else if (Index >= 0 && Index < Size) {
          C.V->Elems[static_cast<size_t>(Index)] = V;
        } else {
          Push(fault());
          break;
        }
        if (Callbacks)
          Callbacks->onDataAccess(C.V->Addr + 16 * (Index + 1),
                                  /*IsWrite=*/true);
        Push(C);
        break;
      }
      if (C.isDict()) {
        runtime::DictKey Key =
            K.isStr() ? runtime::DictKey::fromStr(K.S->Data)
                      : runtime::DictKey::fromInt(runtime::toInt(K));
        int64_t At = C.Dt->find(Key);
        if (At >= 0)
          C.Dt->Entries[static_cast<size_t>(At)].second = V;
        else
          C.Dt->Entries.emplace_back(std::move(Key), V);
        if (Callbacks)
          Callbacks->onDataAccess(C.Dt->Addr + 16 * C.Dt->Entries.size(),
                                  /*IsWrite=*/true);
        Push(C);
        break;
      }
      Push(fault());
      break;
    }
    case bc::Op::Len: {
      Value C = Pop();
      if (C.isVec())
        Push(Value::integer(static_cast<int64_t>(C.V->Elems.size())));
      else if (C.isDict())
        Push(Value::integer(static_cast<int64_t>(C.Dt->Entries.size())));
      else if (C.isStr())
        Push(Value::integer(static_cast<int64_t>(C.S->Data.size())));
      else
        Push(fault());
      break;
    }
    case bc::Op::PopC:
      Pop();
      break;
    case bc::Op::Dup: {
      Value V = Pop();
      Push(V);
      Push(V);
      break;
    }
    case bc::Op::GetL:
      Push(Locals[In.localImm()]);
      break;
    case bc::Op::SetL:
      Locals[In.localImm()] = Pop();
      break;
    case bc::Op::Add:
    case bc::Op::Sub:
    case bc::Op::Mul:
    case bc::Op::Div:
    case bc::Op::Mod: {
      Value B = Pop();
      Value A = Pop();
      runtime::ArithOp O;
      switch (In.Opcode) {
      case bc::Op::Add:
        O = runtime::ArithOp::Add;
        break;
      case bc::Op::Sub:
        O = runtime::ArithOp::Sub;
        break;
      case bc::Op::Mul:
        O = runtime::ArithOp::Mul;
        break;
      case bc::Op::Div:
        O = runtime::ArithOp::Div;
        break;
      default:
        O = runtime::ArithOp::Mod;
        break;
      }
      Value Res = runtime::arith(O, A, B);
      if (Opts.TestOnlyIntAddSkew != 0 && In.Opcode == bc::Op::Add &&
          Res.isInt())
        Res = Value::integer(Res.I + Opts.TestOnlyIntAddSkew);
      if (Res.isNull() && !(A.isNull() || B.isNull()))
        ++Faults;
      if (Callbacks)
        Callbacks->onTypeObserve(FId, Pc, A.T);
      Push(Res);
      break;
    }
    case bc::Op::Concat: {
      Value B = Pop();
      Value A = Pop();
      Push(runtime::concat(H, A, B));
      break;
    }
    case bc::Op::Not:
      Push(Value::boolean(!runtime::toBool(Pop())));
      break;
    case bc::Op::CmpEq:
    case bc::Op::CmpNe:
    case bc::Op::CmpLt:
    case bc::Op::CmpLe:
    case bc::Op::CmpGt:
    case bc::Op::CmpGe: {
      Value B = Pop();
      Value A = Pop();
      runtime::CmpOp O;
      switch (In.Opcode) {
      case bc::Op::CmpEq:
        O = runtime::CmpOp::Eq;
        break;
      case bc::Op::CmpNe:
        O = runtime::CmpOp::Ne;
        break;
      case bc::Op::CmpLt:
        O = runtime::CmpOp::Lt;
        break;
      case bc::Op::CmpLe:
        O = runtime::CmpOp::Le;
        break;
      case bc::Op::CmpGt:
        O = runtime::CmpOp::Gt;
        break;
      default:
        O = runtime::CmpOp::Ge;
        break;
      }
      if (Callbacks)
        Callbacks->onTypeObserve(FId, Pc, A.T);
      Push(runtime::compare(O, A, B));
      break;
    }
    case bc::Op::Jmp:
      Pc = In.targetImm();
      continue;
    case bc::Op::JmpZ: {
      bool Cond = runtime::toBool(Pop());
      if (!Cond) {
        Pc = In.targetImm();
        continue;
      }
      break;
    }
    case bc::Op::JmpNZ: {
      bool Cond = runtime::toBool(Pop());
      if (Cond) {
        Pc = In.targetImm();
        continue;
      }
      break;
    }
    case bc::Op::FCall: {
      uint32_t N = In.countImm();
      assert(Stack.size() >= N && "verifier guarantees arg availability");
      const Value *CallArgs = Stack.data() + (Stack.size() - N);
      Value Res = execFrame(In.funcImm(), CallArgs, N, Value::null(), FId,
                            Depth + 1);
      Stack.resize(Stack.size() - N);
      Push(Res);
      if (Aborted)
        Pc = static_cast<uint32_t>(CodeSize);
      break;
    }
    case bc::Op::FCallObj: {
      uint32_t N = In.countImm();
      assert(Stack.size() >= N + 1 && "verifier guarantees receiver + args");
      Value Recv = Stack[Stack.size() - N - 1];
      const Value *CallArgs = Stack.data() + (Stack.size() - N);
      Value Res;
      if (!Recv.isObj()) {
        Res = fault();
      } else {
        bc::FuncId Callee = Recv.O->Layout->findMethod(In.strImm());
        if (!Callee.valid()) {
          Res = fault();
        } else {
          if (Callbacks)
            Callbacks->onVirtualCall(FId, Pc, Callee);
          Res = execFrame(Callee, CallArgs, N, Recv, FId, Depth + 1);
        }
      }
      Stack.resize(Stack.size() - N - 1);
      Push(Res);
      if (Aborted)
        Pc = static_cast<uint32_t>(CodeSize);
      break;
    }
    case bc::Op::NativeCall: {
      uint32_t N = In.countImm();
      assert(Stack.size() >= N && "verifier guarantees arg availability");
      const runtime::Builtin &Native = Builtins.builtin(In.builtinImm());
      runtime::NativeContext Ctx{H, Output};
      Value Res = Native.Fn(Ctx, Stack.data() + (Stack.size() - N), N);
      Stack.resize(Stack.size() - N);
      Push(Res);
      break;
    }
    case bc::Op::NewObj: {
      const runtime::ClassLayout &Layout = Classes.layout(In.clsImm());
      Push(Value::obj(H.allocObject(&Layout, Layout.numSlots())));
      break;
    }
    case bc::Op::GetProp: {
      Value Obj = Pop();
      if (!Obj.isObj()) {
        Push(fault());
        break;
      }
      int64_t Slot = Obj.O->Layout->findSlot(In.strImm());
      if (Slot < 0) {
        Push(fault());
        break;
      }
      if (Callbacks)
        Callbacks->onPropAccess(Obj.O->Layout->id(), In.strImm(),
                                /*IsWrite=*/false,
                                Obj.O->slotAddr(static_cast<uint32_t>(Slot)));
      if (Callbacks)
        Callbacks->onTypeObserve(FId, Pc,
                                 Obj.O->Slots[static_cast<size_t>(Slot)].T);
      Push(Obj.O->Slots[static_cast<size_t>(Slot)]);
      break;
    }
    case bc::Op::SetProp: {
      Value V = Pop();
      Value Obj = Pop();
      if (!Obj.isObj()) {
        (void)fault();
        break;
      }
      int64_t Slot = Obj.O->Layout->findSlot(In.strImm());
      if (Slot < 0) {
        (void)fault();
        break;
      }
      if (Callbacks)
        Callbacks->onPropAccess(Obj.O->Layout->id(), In.strImm(),
                                /*IsWrite=*/true,
                                Obj.O->slotAddr(static_cast<uint32_t>(Slot)));
      Obj.O->Slots[static_cast<size_t>(Slot)] = V;
      break;
    }
    case bc::Op::GetThis:
      Push(This);
      break;
    case bc::Op::RetC:
      RetVal = Pop();
      Pc = static_cast<uint32_t>(CodeSize);
      continue;
    }
    ++Pc;
  }

  if (InstrCounts) {
    if (InstrCounts->size() < R.numFuncs())
      InstrCounts->resize(R.numFuncs(), 0);
    (*InstrCounts)[FId.raw()] += FrameSteps;
  }
  if (Callbacks)
    Callbacks->onFuncExit(FId);
  return RetVal;
}
