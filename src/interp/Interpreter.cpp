//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
//
// Two execution engines share this file (see InterpEngine in the header):
//
//  - execFrameLegacy: the original switch loop.  Per-instruction budget
//    check, per-instruction "is anyone observing?" tests, vector-backed
//    frames, a fresh VmString per Op::Str.  It is the semantic reference
//    and the baseline for bench/micro_interp.
//
//  - execFrameFast<Instrumented>: threaded dispatch (computed goto on
//    GNU-compatible compilers, a switch otherwise), frames carved from
//    the request FrameArena using statically computed stack bounds,
//    interned strings, inline caches for property/method sites, and step
//    accounting charged per straight-line run instead of per instruction
//    (interp/InterpCache.h proves the equivalence).  The Instrumented
//    template parameter hoists every callback test out of the loop: the
//    plain instantiation contains no observation code at all, and the
//    engine picks the instantiation once per frame.
//
// Every observable -- results, faults, step totals, abort points,
// callback streams, simulated heap addresses -- must be bit-for-bit
// identical across engines; the conformance harness (src/testing) diffs
// full execution digests between them to enforce it.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "runtime/ValueOps.h"
#include "support/Assert.h"

#include <cstring>

using namespace jumpstart;
using namespace jumpstart::interp;
using runtime::Value;

#if defined(__GNUC__) || defined(__clang__)
#define JUMPSTART_COMPUTED_GOTO 1
#define JS_UNLIKELY(X) __builtin_expect(!!(X), 0)
#else
#define JUMPSTART_COMPUTED_GOTO 0
#define JS_UNLIKELY(X) (X)
#endif

Interpreter::Interpreter(const bc::Repo &R, runtime::ClassTable &Classes,
                         runtime::Heap &H,
                         const runtime::BuiltinTable &Builtins,
                         InterpOptions Opts)
    : R(R), Classes(Classes), H(H), Builtins(Builtins), Opts(Opts),
      Blocks(R), Caches(R) {}

Value Interpreter::fault() {
  ++Faults;
  return Value::null();
}

bool Interpreter::seedIC(bc::FuncId F, uint32_t Pc, const void *Key,
                         uint64_t Payload) {
  if (F.raw() >= R.numFuncs() || !Key)
    return false;
  FuncExecInfo &Info = Caches.info(F);
  if (Pc >= Info.ICs.size())
    return false; // legacy-engine function (no IC table) or bad site
  ICEntry &E = Info.ICs[Pc];
  if (E.Key)
    return false; // already warm; never overwrite a live entry
  E.Key = Key;
  E.Payload = Payload;
  return true;
}

InterpResult Interpreter::call(bc::FuncId F,
                               const std::vector<Value> &Args) {
  Steps = 0;
  Faults = 0;
  Aborted = false;
  InterpResult Result;
  Result.Ret = execFrame(F, Args.data(), static_cast<uint32_t>(Args.size()),
                         Value::null(), bc::FuncId(), /*Depth=*/0);
  Result.Ok = !Aborted;
  Result.Steps = Steps;
  Result.Faults = Faults;
  return Result;
}

Value Interpreter::execFrame(bc::FuncId FId, const Value *Args,
                             uint32_t NumArgs, Value This, bc::FuncId Caller,
                             uint32_t Depth) {
  if (Depth >= Opts.MaxCallDepth) {
    Aborted = true;
    return Value::null();
  }
  const bc::Function &F = R.func(FId);
  if (F.Code.empty())
    return fault();

  if (Opts.Engine == InterpEngine::Legacy)
    return execFrameLegacy(F, FId, Args, NumArgs, This, Caller, Depth);

  FuncExecInfo &Info = Caches.info(FId);
  if (JS_UNLIKELY(!Info.HasStaticStack))
    return execFrameLegacy(F, FId, Args, NumArgs, This, Caller, Depth);
  if (Callbacks)
    return execFrameFast<true>(F, Info, FId, Args, NumArgs, This, Caller,
                               Depth);
  return execFrameFast<false>(F, Info, FId, Args, NumArgs, This, Caller,
                              Depth);
}

template <bool Instrumented>
Value Interpreter::callFast(bc::FuncId FId, const Value *Args,
                            uint32_t NumArgs, Value This, bc::FuncId Caller,
                            uint32_t Depth) {
  if (Depth >= Opts.MaxCallDepth) {
    Aborted = true;
    return Value::null();
  }
  const bc::Function &F = R.func(FId);
  if (F.Code.empty())
    return fault();
  FuncExecInfo &Info = Caches.info(FId);
  if (JS_UNLIKELY(!Info.HasStaticStack))
    return execFrameLegacy(F, FId, Args, NumArgs, This, Caller, Depth);
  return execFrameFast<Instrumented>(F, Info, FId, Args, NumArgs, This,
                                     Caller, Depth);
}

//===----------------------------------------------------------------------===//
// Fast engine
//===----------------------------------------------------------------------===//

#if JUMPSTART_COMPUTED_GOTO
#define VM_CASE(Name) lbl_##Name
#define VM_DISPATCH()                                                          \
  do {                                                                         \
    VM_PREAMBLE();                                                             \
    goto *Handlers[static_cast<uint8_t>(Ip->Opcode)];                          \
  } while (0)
#else
#define VM_CASE(Name) case bc::Op::Name
#define VM_DISPATCH() goto DispatchTop
#endif

// Per-dispatch work.  In bulk-charged mode (the common case) the budget
// was paid at the run boundary, so only the instrumentation remains --
// and the plain instantiation compiles the whole macro down to one
// never-taken branch.  Checked mode replicates the legacy engine's
// per-instruction sequence exactly; it is entered only when the current
// run cannot fit the remaining budget, and then provably aborts before
// reaching the next run boundary.
#define VM_PREAMBLE()                                                          \
  do {                                                                         \
    if (JS_UNLIKELY(Checked)) {                                                \
      if (++Steps > Opts.StepBudget) {                                         \
        Aborted = true;                                                        \
        goto ExitLoop;                                                         \
      }                                                                        \
      ++FrameSteps;                                                            \
    }                                                                          \
    if constexpr (Instrumented) {                                              \
      uint32_t IPc = VM_PC();                                                  \
      uint32_t B = PcToBlock[IPc];                                             \
      if (B != CurBlock) {                                                     \
        CurBlock = B;                                                          \
        Callbacks->onBlockEnter(FId, B);                                       \
      }                                                                        \
      if (TraceInstrs)                                                         \
        Callbacks->onInstr(FId, IPc, Depth);                                   \
    }                                                                          \
  } while (0)

// Sequential advance within a run: no budget or bounds work.
#define VM_NEXT()                                                              \
  do {                                                                         \
    ++Ip;                                                                      \
    VM_DISPATCH();                                                             \
  } while (0)

// Control transfer to a branch target: starts a new run.
#define VM_JUMP(Target)                                                        \
  do {                                                                         \
    uint32_t JT = (Target);                                                    \
    Ip = Code + JT;                                                            \
    ChargeRun(JT);                                                             \
    VM_DISPATCH();                                                             \
  } while (0)

// Advance past a run-ending instruction (call or untaken conditional
// branch): the next instruction starts a new run.
#define VM_NEXT_RUN()                                                          \
  do {                                                                         \
    ++Ip;                                                                      \
    if (JS_UNLIKELY(Ip >= CodeEnd))                                            \
      goto ExitLoop;                                                           \
    ChargeRun(VM_PC());                                                        \
    VM_DISPATCH();                                                             \
  } while (0)

#define VM_PUSH(V) (void)(*Sp++ = (V))
#define VM_POP() (*--Sp)
// Current instruction index (only needed off the straight-line path:
// run charges, IC sites, instrumentation).
#define VM_PC() static_cast<uint32_t>(Ip - Code)

namespace {

/// True when both operands are ints whose magnitude keeps the
/// int->double conversion inside runtime::compare exact (|v| <= 2^53).
/// For such pairs integer comparison is bit-identical to the legacy
/// double-based comparison, so the fast engine may inline it.
inline bool exactIntPair(const Value &A, const Value &B) {
  constexpr int64_t L = int64_t(1) << 53;
  return A.isInt() && B.isInt() && A.I <= L && A.I >= -L && B.I <= L &&
         B.I >= -L;
}

/// Branch-condition fast path, identical to runtime::toBool for the
/// int/bool tags that dominate loop back edges.
inline bool condBool(const Value &V) {
  if (V.isInt())
    return V.I != 0;
  if (V.isBool())
    return V.B;
  return runtime::toBool(V);
}

inline bool exactInt(int64_t V) {
  constexpr int64_t L = int64_t(1) << 53;
  return V <= L && V >= -L;
}

/// Peephole fusion kernel for the uninstrumented fast loop: evaluates
/// the binary opcode \p O over both-int operands.  Returns false when
/// the generic handler must run instead -- a non-fusible opcode, a zero
/// divisor (fault bookkeeping lives in the generic path), or a
/// comparison whose magnitude could make the int and double orderings
/// differ.  A true result is bit-identical to the generic handler.
inline bool fuseIntBinop(bc::Op O, int64_t A, int64_t B, Value &Out) {
  switch (O) {
  case bc::Op::Add:
    Out = Value::integer(A + B);
    return true;
  case bc::Op::Sub:
    Out = Value::integer(A - B);
    return true;
  case bc::Op::Mul:
    Out = Value::integer(A * B);
    return true;
  case bc::Op::Mod:
    if (B == 0)
      return false;
    Out = Value::integer(A % B);
    return true;
  case bc::Op::Div:
    if (B == 0)
      return false;
    if (A % B == 0)
      Out = Value::integer(A / B);
    else
      Out = Value::dbl(static_cast<double>(A) / static_cast<double>(B));
    return true;
  case bc::Op::CmpEq:
  case bc::Op::CmpNe:
  case bc::Op::CmpLt:
  case bc::Op::CmpLe:
  case bc::Op::CmpGt:
  case bc::Op::CmpGe: {
    if (!exactInt(A) || !exactInt(B))
      return false;
    bool R = false;
    switch (O) {
    case bc::Op::CmpEq: R = A == B; break;
    case bc::Op::CmpNe: R = A != B; break;
    case bc::Op::CmpLt: R = A < B; break;
    case bc::Op::CmpLe: R = A <= B; break;
    case bc::Op::CmpGt: R = A > B; break;
    default: R = A >= B; break;
    }
    Out = Value::boolean(R);
    return true;
  }
  default:
    return false;
  }
}

} // namespace

template <bool Instrumented>
Value Interpreter::execFrameFast(const bc::Function &F, FuncExecInfo &Info,
                                 bc::FuncId FId, const Value *Args,
                                 uint32_t NumArgs, Value This,
                                 bc::FuncId Caller, uint32_t Depth) {
  if constexpr (Instrumented)
    Callbacks->onFuncEnter(FId, Caller, Args, NumArgs);
  [[maybe_unused]] const bool TraceInstrs =
      Instrumented && Callbacks->wantsInstrTrace(FId);
  [[maybe_unused]] const uint32_t *PcToBlock = nullptr;
  if constexpr (Instrumented)
    PcToBlock = Blocks.pcToBlock(FId);

  // One arena carve covers locals and the operand stack; MaxStack bounds
  // every path, so pushes need no growth checks and returns rewind in
  // O(1).  Args may point into the caller's stack region, which lies
  // below this frame's mark and stays untouched.
  runtime::FrameArena &Arena = H.frameArena();
  const runtime::FrameArena::Mark Mark = Arena.mark();
  Value *Locals = Arena.alloc(F.NumLocals + Info.MaxStack);
  Value *const StackBase = Locals + F.NumLocals;
  Value *Sp = StackBase; // one past the top of the stack
  const uint32_t CopyArgs = NumArgs < F.NumLocals ? NumArgs : F.NumLocals;
  for (uint32_t I = 0; I < CopyArgs; ++I)
    Locals[I] = Args[I];
  for (uint32_t I = CopyArgs; I < F.NumLocals; ++I)
    Locals[I] = Value::null();

  const uint32_t *const RunLen = Info.RunLen.data();
  ICEntry *const ICs = Info.ICs.data();
  const bc::Instr *const Code = F.Code.data();
  const bc::Instr *const CodeEnd = Code + F.Code.size();

  Value RetVal = Value::null();
  const bc::Instr *Ip = Code;
  [[maybe_unused]] uint32_t CurBlock = ~0u;
  uint64_t FrameSteps = 0;
  bool Checked = false;
  // Peephole fusion (below) is disabled under the test-only Add skew so
  // every Add pays the generic handler's skew check.
  [[maybe_unused]] const bool NoSkew = Opts.TestOnlyIntAddSkew == 0;

  auto ChargeRun = [&](uint32_t At) {
    uint32_t RL = RunLen[At];
    if (JS_UNLIKELY(Steps + RL > Opts.StepBudget)) {
      Checked = true;
      return;
    }
    Steps += RL;
    FrameSteps += RL;
  };

#if JUMPSTART_COMPUTED_GOTO
  static const void *const Handlers[] = {
#define JUMPSTART_OP_LABEL(Name, ImmA, ImmB, Pop, Push, Flags) &&lbl_##Name,
      JUMPSTART_OPCODES(JUMPSTART_OP_LABEL)
#undef JUMPSTART_OP_LABEL
  };
#endif

  ChargeRun(0);
#if JUMPSTART_COMPUTED_GOTO
  VM_DISPATCH();
#else
DispatchTop:
  VM_PREAMBLE();
  switch (Ip->Opcode) {
#endif

  VM_CASE(Nop) : { VM_NEXT(); }

  VM_CASE(Int) : {
    // Fused Int;<binop> over an int top-of-stack: one dispatch, no
    // push/pop round trip.  Ip[1] is in bounds (Int is never last).
    // Only in the uninstrumented loop -- per-instruction callbacks and
    // checked-mode step counting need every dispatch -- and steps stay
    // exact because both ops are inside the already-charged run.
    if constexpr (!Instrumented) {
      if (!Checked && NoSkew && Sp != StackBase && Sp[-1].isInt()) {
        Value Out;
        if (fuseIntBinop(Ip[1].Opcode, Sp[-1].I, Ip->ImmA, Out)) {
          Sp[-1] = Out;
          Ip += 2;
          VM_DISPATCH();
        }
      }
    }
    VM_PUSH(Value::integer(Ip->ImmA));
    VM_NEXT();
  }

  VM_CASE(Dbl) : {
    double D;
    std::memcpy(&D, &Ip->ImmA, sizeof(D));
    VM_PUSH(Value::dbl(D));
    VM_NEXT();
  }

  VM_CASE(True) : {
    VM_PUSH(Value::boolean(true));
    VM_NEXT();
  }

  VM_CASE(False) : {
    VM_PUSH(Value::boolean(false));
    VM_NEXT();
  }

  VM_CASE(Null) : {
    VM_PUSH(Value::null());
    VM_NEXT();
  }

  VM_CASE(Str) : {
    // Interned: one host allocation per distinct repo string per server,
    // not one per execution.  The simulated bump still happens inside
    // internString, so downstream addresses match the legacy engine.
    const bc::Instr &In = *Ip;
    VM_PUSH(Value::str(H.internString(In.strImm().raw(), R.str(In.strImm()))));
    VM_NEXT();
  }

  VM_CASE(NewVec) : {
    VM_PUSH(Value::vec(H.allocVec()));
    VM_NEXT();
  }

  VM_CASE(NewDict) : {
    VM_PUSH(Value::dict(H.allocDict()));
    VM_NEXT();
  }

  VM_CASE(AddElem) : {
    Value V = VM_POP();
    Value C = VM_POP();
    if (!C.isVec()) {
      VM_PUSH(fault());
      VM_NEXT();
    }
    C.V->Elems.push_back(V);
    if constexpr (Instrumented)
      Callbacks->onDataAccess(C.V->Addr + 16 * C.V->Elems.size(),
                              /*IsWrite=*/true);
    VM_PUSH(C);
    VM_NEXT();
  }

  VM_CASE(AddKeyElem) : {
    Value V = VM_POP();
    Value K = VM_POP();
    Value C = VM_POP();
    if (!C.isDict()) {
      VM_PUSH(fault());
      VM_NEXT();
    }
    int64_t At = K.isStr() ? C.Dt->find(std::string_view(K.S->Data))
                           : C.Dt->find(runtime::toInt(K));
    if (At >= 0)
      C.Dt->Entries[static_cast<size_t>(At)].second = V;
    else
      C.Dt->Entries.emplace_back(
          K.isStr() ? runtime::DictKey::fromStr(K.S->Data)
                    : runtime::DictKey::fromInt(runtime::toInt(K)),
          V);
    if constexpr (Instrumented)
      Callbacks->onDataAccess(C.Dt->Addr + 16 * C.Dt->Entries.size(),
                              /*IsWrite=*/true);
    VM_PUSH(C);
    VM_NEXT();
  }

  VM_CASE(GetElem) : {
    Value K = VM_POP();
    Value C = VM_POP();
    if constexpr (Instrumented)
      Callbacks->onTypeObserve(FId, VM_PC(), C.T);
    if (C.isVec()) {
      int64_t Index = runtime::toInt(K);
      if (Index < 0 || Index >= static_cast<int64_t>(C.V->Elems.size())) {
        VM_PUSH(fault());
        VM_NEXT();
      }
      if constexpr (Instrumented)
        Callbacks->onDataAccess(C.V->Addr + 16 * (Index + 1),
                                /*IsWrite=*/false);
      VM_PUSH(C.V->Elems[static_cast<size_t>(Index)]);
      VM_NEXT();
    }
    if (C.isDict()) {
      // Allocation-free probe: no DictKey (and no std::string) is
      // materialized for the lookup.
      int64_t At = K.isStr() ? C.Dt->find(std::string_view(K.S->Data))
                             : C.Dt->find(runtime::toInt(K));
      if constexpr (Instrumented)
        Callbacks->onDataAccess(C.Dt->Addr + 16 * (At >= 0 ? At + 1 : 1),
                                /*IsWrite=*/false);
      if (At < 0) {
        VM_PUSH(Value::null());
        VM_NEXT();
      }
      VM_PUSH(C.Dt->Entries[static_cast<size_t>(At)].second);
      VM_NEXT();
    }
    VM_PUSH(fault());
    VM_NEXT();
  }

  VM_CASE(SetElem) : {
    Value V = VM_POP();
    Value K = VM_POP();
    Value C = VM_POP();
    if constexpr (Instrumented)
      Callbacks->onTypeObserve(FId, VM_PC(), C.T);
    if (C.isVec()) {
      int64_t Index = runtime::toInt(K);
      int64_t Size = static_cast<int64_t>(C.V->Elems.size());
      if (Index == Size) {
        C.V->Elems.push_back(V);
      } else if (Index >= 0 && Index < Size) {
        C.V->Elems[static_cast<size_t>(Index)] = V;
      } else {
        VM_PUSH(fault());
        VM_NEXT();
      }
      if constexpr (Instrumented)
        Callbacks->onDataAccess(C.V->Addr + 16 * (Index + 1),
                                /*IsWrite=*/true);
      VM_PUSH(C);
      VM_NEXT();
    }
    if (C.isDict()) {
      int64_t At = K.isStr() ? C.Dt->find(std::string_view(K.S->Data))
                             : C.Dt->find(runtime::toInt(K));
      if (At >= 0)
        C.Dt->Entries[static_cast<size_t>(At)].second = V;
      else
        C.Dt->Entries.emplace_back(
            K.isStr() ? runtime::DictKey::fromStr(K.S->Data)
                      : runtime::DictKey::fromInt(runtime::toInt(K)),
            V);
      if constexpr (Instrumented)
        Callbacks->onDataAccess(C.Dt->Addr + 16 * C.Dt->Entries.size(),
                                /*IsWrite=*/true);
      VM_PUSH(C);
      VM_NEXT();
    }
    VM_PUSH(fault());
    VM_NEXT();
  }

  VM_CASE(Len) : {
    Value C = VM_POP();
    if (C.isVec())
      VM_PUSH(Value::integer(static_cast<int64_t>(C.V->Elems.size())));
    else if (C.isDict())
      VM_PUSH(Value::integer(static_cast<int64_t>(C.Dt->Entries.size())));
    else if (C.isStr())
      VM_PUSH(Value::integer(static_cast<int64_t>(C.S->Data.size())));
    else
      VM_PUSH(fault());
    VM_NEXT();
  }

  VM_CASE(PopC) : {
    (void)VM_POP();
    VM_NEXT();
  }

  VM_CASE(Dup) : {
    Value V = VM_POP();
    VM_PUSH(V);
    VM_PUSH(V);
    VM_NEXT();
  }

  VM_CASE(GetL) : {
    Value V = Locals[Ip->localImm()];
    if constexpr (!Instrumented) {
      if (!Checked && NoSkew) {
        // GetL;Int;<binop> triples and GetL;<binop> pairs collapse to a
        // single dispatch (expression trees are full of both).  Ip[1]
        // is in bounds, and Ip[2] is too when Ip[1] is the non-terminal
        // Int.  Failed fusions fall through to the generic pushes.
        const bc::Instr &N1 = Ip[1];
        if (N1.Opcode == bc::Op::Int && V.isInt()) {
          Value Out;
          if (fuseIntBinop(Ip[2].Opcode, V.I, N1.ImmA, Out)) {
            VM_PUSH(Out);
            Ip += 3;
            VM_DISPATCH();
          }
          VM_PUSH(V);
          VM_PUSH(Value::integer(N1.ImmA));
          Ip += 2;
          VM_DISPATCH();
        }
        if (V.isInt() && Sp != StackBase && Sp[-1].isInt()) {
          Value Out;
          if (fuseIntBinop(N1.Opcode, Sp[-1].I, V.I, Out)) {
            Sp[-1] = Out;
            Ip += 2;
            VM_DISPATCH();
          }
        }
      }
    }
    VM_PUSH(V);
    VM_NEXT();
  }

  VM_CASE(SetL) : {
    Locals[Ip->localImm()] = VM_POP();
    if constexpr (!Instrumented) {
      if (!Checked) {
        // SetL;GetL (store one local, load another) is the standard
        // statement seam; fuse the reload into this dispatch.
        const bc::Instr &N1 = Ip[1];
        if (N1.Opcode == bc::Op::GetL) {
          VM_PUSH(Locals[N1.localImm()]);
          Ip += 2;
          VM_DISPATCH();
        }
      }
    }
    VM_NEXT();
  }

// Arithmetic.  Both-int Add/Sub/Mul inline the common case; the result
// is identical to runtime::arith's BothInt path and never null, so the
// fault bookkeeping below is unaffected.  Div/Mod keep their
// zero-divisor handling in runtime::arith.
#define VM_ARITH_TAIL(A, B, Res)                                               \
  do {                                                                         \
    if ((Res).isNull() && !((A).isNull() || (B).isNull()))                     \
      ++Faults;                                                                \
    if constexpr (Instrumented)                                                \
      Callbacks->onTypeObserve(FId, VM_PC(), (A).T);                                \
    VM_PUSH(Res);                                                              \
    VM_NEXT();                                                                 \
  } while (0)

  VM_CASE(Add) : {
    Value B = VM_POP();
    Value A = VM_POP();
    Value Res;
    if (A.isInt() && B.isInt())
      Res = Value::integer(A.I + B.I);
    else
      Res = runtime::arith(runtime::ArithOp::Add, A, B);
    if (JS_UNLIKELY(Opts.TestOnlyIntAddSkew != 0) && Res.isInt())
      Res = Value::integer(Res.I + Opts.TestOnlyIntAddSkew);
    VM_ARITH_TAIL(A, B, Res);
  }

  VM_CASE(Sub) : {
    Value B = VM_POP();
    Value A = VM_POP();
    Value Res;
    if (A.isInt() && B.isInt())
      Res = Value::integer(A.I - B.I);
    else
      Res = runtime::arith(runtime::ArithOp::Sub, A, B);
    VM_ARITH_TAIL(A, B, Res);
  }

  VM_CASE(Mul) : {
    Value B = VM_POP();
    Value A = VM_POP();
    Value Res;
    if (A.isInt() && B.isInt())
      Res = Value::integer(A.I * B.I);
    else
      Res = runtime::arith(runtime::ArithOp::Mul, A, B);
    VM_ARITH_TAIL(A, B, Res);
  }

  VM_CASE(Div) : {
    Value B = VM_POP();
    Value A = VM_POP();
    Value Res;
    if (A.isInt() && B.isInt()) {
      // Mirrors runtime::arith's BothInt branch exactly, including the
      // exact-division int result and the zero-divisor null.
      if (B.I == 0)
        Res = Value::null();
      else if (A.I % B.I == 0)
        Res = Value::integer(A.I / B.I);
      else
        Res = Value::dbl(static_cast<double>(A.I) /
                         static_cast<double>(B.I));
    } else {
      Res = runtime::arith(runtime::ArithOp::Div, A, B);
    }
    VM_ARITH_TAIL(A, B, Res);
  }

  VM_CASE(Mod) : {
    Value B = VM_POP();
    Value A = VM_POP();
    Value Res;
    if (A.isInt() && B.isInt())
      Res = B.I == 0 ? Value::null() : Value::integer(A.I % B.I);
    else
      Res = runtime::arith(runtime::ArithOp::Mod, A, B);
    VM_ARITH_TAIL(A, B, Res);
  }

#undef VM_ARITH_TAIL

  VM_CASE(Concat) : {
    Value B = VM_POP();
    Value A = VM_POP();
    VM_PUSH(runtime::concat(H, A, B));
    VM_NEXT();
  }

  VM_CASE(Not) : {
    Value V = VM_POP();
    VM_PUSH(Value::boolean(!runtime::toBool(V)));
    VM_NEXT();
  }

// Comparison semantics are double-based in the legacy engine (ints are
// converted); the inline path fires only when that conversion is exact,
// so the integer compare below is bit-identical (see exactIntPair).
#define VM_CMP(O, IntExpr)                                                     \
  do {                                                                         \
    Value B = VM_POP();                                                        \
    Value A = VM_POP();                                                        \
    if constexpr (Instrumented)                                                \
      Callbacks->onTypeObserve(FId, VM_PC(), A.T);                                  \
    if (exactIntPair(A, B))                                                    \
      VM_PUSH(Value::boolean(IntExpr));                                        \
    else                                                                       \
      VM_PUSH(runtime::compare(O, A, B));                                      \
    VM_NEXT();                                                                 \
  } while (0)

  VM_CASE(CmpEq) : { VM_CMP(runtime::CmpOp::Eq, A.I == B.I); }
  VM_CASE(CmpNe) : { VM_CMP(runtime::CmpOp::Ne, A.I != B.I); }
  VM_CASE(CmpLt) : { VM_CMP(runtime::CmpOp::Lt, A.I < B.I); }
  VM_CASE(CmpLe) : { VM_CMP(runtime::CmpOp::Le, A.I <= B.I); }
  VM_CASE(CmpGt) : { VM_CMP(runtime::CmpOp::Gt, A.I > B.I); }
  VM_CASE(CmpGe) : { VM_CMP(runtime::CmpOp::Ge, A.I >= B.I); }

#undef VM_CMP

  VM_CASE(Jmp) : { VM_JUMP(Ip->targetImm()); }

  VM_CASE(JmpZ) : {
    Value V = VM_POP();
    if (!condBool(V))
      VM_JUMP(Ip->targetImm());
    VM_NEXT_RUN();
  }

  VM_CASE(JmpNZ) : {
    Value V = VM_POP();
    if (condBool(V))
      VM_JUMP(Ip->targetImm());
    VM_NEXT_RUN();
  }

  VM_CASE(FCall) : {
    const bc::Instr &In = *Ip;
    uint32_t N = In.countImm();
    assert(Sp - StackBase >= static_cast<ptrdiff_t>(N) &&
           "verifier guarantees arg availability");
    const Value *CallArgs = Sp - N;
    Value Res = callFast<Instrumented>(In.funcImm(), CallArgs, N,
                                       Value::null(), FId, Depth + 1);
    Sp -= N;
    VM_PUSH(Res);
    if (JS_UNLIKELY(Aborted))
      goto ExitLoop;
    VM_NEXT_RUN();
  }

  VM_CASE(FCallObj) : {
    const bc::Instr &In = *Ip;
    uint32_t N = In.countImm();
    assert(Sp - StackBase >= static_cast<ptrdiff_t>(N) + 1 &&
           "verifier guarantees receiver + args");
    Value Recv = *(Sp - N - 1);
    const Value *CallArgs = Sp - N;
    Value Res;
    if (!Recv.isObj()) {
      Res = fault();
    } else {
      // Monomorphic method-dispatch cache keyed by the receiver's
      // layout; layouts are immutable once built, so a hit cannot be
      // stale.  Misses (including polymorphic sites) fall back to the
      // flattened method table.
      const runtime::ClassLayout *L = Recv.O->Layout;
      ICEntry &IC = ICs[VM_PC()];
      bc::FuncId Callee;
      if (IC.Key == L) {
        Callee = bc::FuncId(static_cast<uint32_t>(IC.Payload));
        ++Caches.ICHits;
      } else {
        Callee = L->findMethod(In.strImm());
        ++Caches.ICMisses;
        if (Callee.valid()) {
          IC.Key = L;
          IC.Payload = Callee.raw();
        }
      }
      if (!Callee.valid()) {
        Res = fault();
      } else {
        if constexpr (Instrumented)
          Callbacks->onVirtualCall(FId, VM_PC(), Callee);
        Res = callFast<Instrumented>(Callee, CallArgs, N, Recv, FId,
                                     Depth + 1);
      }
    }
    Sp -= N + 1;
    VM_PUSH(Res);
    if (JS_UNLIKELY(Aborted))
      goto ExitLoop;
    VM_NEXT_RUN();
  }

  VM_CASE(NativeCall) : {
    const bc::Instr &In = *Ip;
    uint32_t N = In.countImm();
    assert(Sp - StackBase >= static_cast<ptrdiff_t>(N) &&
           "verifier guarantees arg availability");
    const runtime::Builtin &Native = Builtins.builtin(In.builtinImm());
    runtime::NativeContext Ctx{H, Output};
    Value Res = Native.Fn(Ctx, Sp - N, N);
    Sp -= N;
    VM_PUSH(Res);
    VM_NEXT_RUN();
  }

  VM_CASE(NewObj) : {
    const runtime::ClassLayout &Layout = Classes.layout(Ip->clsImm());
    VM_PUSH(Value::obj(H.allocObject(&Layout, Layout.numSlots())));
    VM_NEXT();
  }

  VM_CASE(GetProp) : {
    const bc::Instr &In = *Ip;
    Value Obj = VM_POP();
    if (!Obj.isObj()) {
      VM_PUSH(fault());
      VM_NEXT();
    }
    const runtime::ClassLayout *L = Obj.O->Layout;
    ICEntry &IC = ICs[VM_PC()];
    int64_t Slot;
    if (IC.Key == L) {
      Slot = static_cast<int64_t>(IC.Payload);
      ++Caches.ICHits;
    } else {
      Slot = L->findSlot(In.strImm());
      ++Caches.ICMisses;
      if (Slot >= 0) {
        IC.Key = L;
        IC.Payload = static_cast<uint64_t>(Slot);
      }
    }
    if (Slot < 0) {
      VM_PUSH(fault());
      VM_NEXT();
    }
    if constexpr (Instrumented) {
      Callbacks->onPropAccess(L->id(), In.strImm(), /*IsWrite=*/false,
                              Obj.O->slotAddr(static_cast<uint32_t>(Slot)));
      Callbacks->onTypeObserve(FId, VM_PC(),
                               Obj.O->Slots[static_cast<size_t>(Slot)].T);
    }
    VM_PUSH(Obj.O->Slots[static_cast<size_t>(Slot)]);
    VM_NEXT();
  }

  VM_CASE(SetProp) : {
    const bc::Instr &In = *Ip;
    Value V = VM_POP();
    Value Obj = VM_POP();
    if (!Obj.isObj()) {
      (void)fault();
      VM_NEXT();
    }
    const runtime::ClassLayout *L = Obj.O->Layout;
    ICEntry &IC = ICs[VM_PC()];
    int64_t Slot;
    if (IC.Key == L) {
      Slot = static_cast<int64_t>(IC.Payload);
      ++Caches.ICHits;
    } else {
      Slot = L->findSlot(In.strImm());
      ++Caches.ICMisses;
      if (Slot >= 0) {
        IC.Key = L;
        IC.Payload = static_cast<uint64_t>(Slot);
      }
    }
    if (Slot < 0) {
      (void)fault();
      VM_NEXT();
    }
    if constexpr (Instrumented)
      Callbacks->onPropAccess(L->id(), In.strImm(), /*IsWrite=*/true,
                              Obj.O->slotAddr(static_cast<uint32_t>(Slot)));
    Obj.O->Slots[static_cast<size_t>(Slot)] = V;
    VM_NEXT();
  }

  VM_CASE(GetThis) : {
    VM_PUSH(This);
    VM_NEXT();
  }

  VM_CASE(RetC) : {
    RetVal = VM_POP();
    goto ExitLoop;
  }

#if !JUMPSTART_COMPUTED_GOTO
  }
#endif

ExitLoop:
  if (InstrCounts) {
    if (InstrCounts->size() < R.numFuncs())
      InstrCounts->resize(R.numFuncs(), 0);
    (*InstrCounts)[FId.raw()] += FrameSteps;
  }
  if constexpr (Instrumented)
    Callbacks->onFuncExit(FId);
  Arena.rewind(Mark);
  return RetVal;
}

#undef VM_CASE
#undef VM_DISPATCH
#undef VM_PREAMBLE
#undef VM_NEXT
#undef VM_JUMP
#undef VM_NEXT_RUN
#undef VM_PUSH
#undef VM_POP
#undef VM_PC

//===----------------------------------------------------------------------===//
// Legacy engine (the original loop, kept as the measured baseline)
//===----------------------------------------------------------------------===//

Value Interpreter::execFrameLegacy(const bc::Function &F, bc::FuncId FId,
                                   const Value *Args, uint32_t NumArgs,
                                   Value This, bc::FuncId Caller,
                                   uint32_t Depth) {
  if (Callbacks)
    Callbacks->onFuncEnter(FId, Caller, Args, NumArgs);
  const bool TraceInstrs = Callbacks && Callbacks->wantsInstrTrace(FId);
  const bc::BlockList *BlockInfo = Callbacks ? &Blocks.blocks(FId) : nullptr;

  // Frame state.
  std::vector<Value> Locals(F.NumLocals, Value::null());
  for (uint32_t I = 0; I < NumArgs && I < F.NumLocals; ++I)
    Locals[I] = Args[I];
  std::vector<Value> Stack;
  Stack.reserve(16);
  // Model cost: one host allocation per frame vector (the fast engine's
  // arena frames charge nothing).
  H.noteHostAllocs(2);
  uint64_t FrameSteps = 0;
  uint32_t CurBlock = ~0u;

  auto Push = [&](Value V) { Stack.push_back(V); };
  auto Pop = [&]() {
    assert(!Stack.empty() && "operand stack underflow (verifier bug)");
    Value V = Stack.back();
    Stack.pop_back();
    return V;
  };

  Value RetVal = Value::null();
  uint32_t Pc = 0;
  const size_t CodeSize = F.Code.size();

  while (Pc < CodeSize) {
    if (++Steps > Opts.StepBudget) {
      Aborted = true;
      break;
    }
    ++FrameSteps;

    if (Callbacks) {
      uint32_t Block = BlockInfo->blockOf(Pc);
      if (Block != CurBlock) {
        CurBlock = Block;
        Callbacks->onBlockEnter(FId, Block);
      }
      if (TraceInstrs)
        Callbacks->onInstr(FId, Pc, Depth);
    }

    const bc::Instr &In = F.Code[Pc];
    switch (In.Opcode) {
    case bc::Op::Nop:
      break;
    case bc::Op::Int:
      Push(Value::integer(In.ImmA));
      break;
    case bc::Op::Dbl: {
      double D;
      std::memcpy(&D, &In.ImmA, sizeof(D));
      Push(Value::dbl(D));
      break;
    }
    case bc::Op::True:
      Push(Value::boolean(true));
      break;
    case bc::Op::False:
      Push(Value::boolean(false));
      break;
    case bc::Op::Null:
      Push(Value::null());
      break;
    case bc::Op::Str:
      Push(Value::str(H.allocString(R.str(In.strImm()))));
      break;
    case bc::Op::NewVec:
      Push(Value::vec(H.allocVec()));
      break;
    case bc::Op::NewDict:
      Push(Value::dict(H.allocDict()));
      break;
    case bc::Op::AddElem: {
      Value V = Pop();
      Value C = Pop();
      if (!C.isVec()) {
        Push(fault());
        break;
      }
      C.V->Elems.push_back(V);
      if (Callbacks)
        Callbacks->onDataAccess(
            C.V->Addr + 16 * C.V->Elems.size(), /*IsWrite=*/true);
      Push(C);
      break;
    }
    case bc::Op::AddKeyElem: {
      Value V = Pop();
      Value K = Pop();
      Value C = Pop();
      if (!C.isDict()) {
        Push(fault());
        break;
      }
      runtime::DictKey Key = K.isStr()
                                 ? runtime::DictKey::fromStr(K.S->Data)
                                 : runtime::DictKey::fromInt(runtime::toInt(K));
      int64_t At = C.Dt->find(Key);
      if (At >= 0)
        C.Dt->Entries[static_cast<size_t>(At)].second = V;
      else
        C.Dt->Entries.emplace_back(std::move(Key), V);
      if (Callbacks)
        Callbacks->onDataAccess(C.Dt->Addr + 16 * C.Dt->Entries.size(),
                                /*IsWrite=*/true);
      Push(C);
      break;
    }
    case bc::Op::GetElem: {
      Value K = Pop();
      Value C = Pop();
      if (Callbacks)
        Callbacks->onTypeObserve(FId, Pc, C.T);
      if (C.isVec()) {
        int64_t Index = runtime::toInt(K);
        if (Index < 0 ||
            Index >= static_cast<int64_t>(C.V->Elems.size())) {
          Push(fault());
          break;
        }
        if (Callbacks)
          Callbacks->onDataAccess(C.V->Addr + 16 * (Index + 1),
                                  /*IsWrite=*/false);
        Push(C.V->Elems[static_cast<size_t>(Index)]);
        break;
      }
      if (C.isDict()) {
        runtime::DictKey Key =
            K.isStr() ? runtime::DictKey::fromStr(K.S->Data)
                      : runtime::DictKey::fromInt(runtime::toInt(K));
        int64_t At = C.Dt->find(Key);
        if (Callbacks)
          Callbacks->onDataAccess(C.Dt->Addr + 16 * (At >= 0 ? At + 1 : 1),
                                  /*IsWrite=*/false);
        if (At < 0) {
          Push(Value::null());
          break;
        }
        Push(C.Dt->Entries[static_cast<size_t>(At)].second);
        break;
      }
      Push(fault());
      break;
    }
    case bc::Op::SetElem: {
      Value V = Pop();
      Value K = Pop();
      Value C = Pop();
      if (Callbacks)
        Callbacks->onTypeObserve(FId, Pc, C.T);
      if (C.isVec()) {
        int64_t Index = runtime::toInt(K);
        int64_t Size = static_cast<int64_t>(C.V->Elems.size());
        if (Index == Size) {
          C.V->Elems.push_back(V);
        } else if (Index >= 0 && Index < Size) {
          C.V->Elems[static_cast<size_t>(Index)] = V;
        } else {
          Push(fault());
          break;
        }
        if (Callbacks)
          Callbacks->onDataAccess(C.V->Addr + 16 * (Index + 1),
                                  /*IsWrite=*/true);
        Push(C);
        break;
      }
      if (C.isDict()) {
        runtime::DictKey Key =
            K.isStr() ? runtime::DictKey::fromStr(K.S->Data)
                      : runtime::DictKey::fromInt(runtime::toInt(K));
        int64_t At = C.Dt->find(Key);
        if (At >= 0)
          C.Dt->Entries[static_cast<size_t>(At)].second = V;
        else
          C.Dt->Entries.emplace_back(std::move(Key), V);
        if (Callbacks)
          Callbacks->onDataAccess(C.Dt->Addr + 16 * C.Dt->Entries.size(),
                                  /*IsWrite=*/true);
        Push(C);
        break;
      }
      Push(fault());
      break;
    }
    case bc::Op::Len: {
      Value C = Pop();
      if (C.isVec())
        Push(Value::integer(static_cast<int64_t>(C.V->Elems.size())));
      else if (C.isDict())
        Push(Value::integer(static_cast<int64_t>(C.Dt->Entries.size())));
      else if (C.isStr())
        Push(Value::integer(static_cast<int64_t>(C.S->Data.size())));
      else
        Push(fault());
      break;
    }
    case bc::Op::PopC:
      Pop();
      break;
    case bc::Op::Dup: {
      Value V = Pop();
      Push(V);
      Push(V);
      break;
    }
    case bc::Op::GetL:
      Push(Locals[In.localImm()]);
      break;
    case bc::Op::SetL:
      Locals[In.localImm()] = Pop();
      break;
    case bc::Op::Add:
    case bc::Op::Sub:
    case bc::Op::Mul:
    case bc::Op::Div:
    case bc::Op::Mod: {
      Value B = Pop();
      Value A = Pop();
      runtime::ArithOp O;
      switch (In.Opcode) {
      case bc::Op::Add:
        O = runtime::ArithOp::Add;
        break;
      case bc::Op::Sub:
        O = runtime::ArithOp::Sub;
        break;
      case bc::Op::Mul:
        O = runtime::ArithOp::Mul;
        break;
      case bc::Op::Div:
        O = runtime::ArithOp::Div;
        break;
      default:
        O = runtime::ArithOp::Mod;
        break;
      }
      Value Res = runtime::arith(O, A, B);
      if (Opts.TestOnlyIntAddSkew != 0 && In.Opcode == bc::Op::Add &&
          Res.isInt())
        Res = Value::integer(Res.I + Opts.TestOnlyIntAddSkew);
      if (Res.isNull() && !(A.isNull() || B.isNull()))
        ++Faults;
      if (Callbacks)
        Callbacks->onTypeObserve(FId, Pc, A.T);
      Push(Res);
      break;
    }
    case bc::Op::Concat: {
      Value B = Pop();
      Value A = Pop();
      Push(runtime::concat(H, A, B));
      break;
    }
    case bc::Op::Not:
      Push(Value::boolean(!runtime::toBool(Pop())));
      break;
    case bc::Op::CmpEq:
    case bc::Op::CmpNe:
    case bc::Op::CmpLt:
    case bc::Op::CmpLe:
    case bc::Op::CmpGt:
    case bc::Op::CmpGe: {
      Value B = Pop();
      Value A = Pop();
      runtime::CmpOp O;
      switch (In.Opcode) {
      case bc::Op::CmpEq:
        O = runtime::CmpOp::Eq;
        break;
      case bc::Op::CmpNe:
        O = runtime::CmpOp::Ne;
        break;
      case bc::Op::CmpLt:
        O = runtime::CmpOp::Lt;
        break;
      case bc::Op::CmpLe:
        O = runtime::CmpOp::Le;
        break;
      case bc::Op::CmpGt:
        O = runtime::CmpOp::Gt;
        break;
      default:
        O = runtime::CmpOp::Ge;
        break;
      }
      if (Callbacks)
        Callbacks->onTypeObserve(FId, Pc, A.T);
      Push(runtime::compare(O, A, B));
      break;
    }
    case bc::Op::Jmp:
      Pc = In.targetImm();
      continue;
    case bc::Op::JmpZ: {
      bool Cond = runtime::toBool(Pop());
      if (!Cond) {
        Pc = In.targetImm();
        continue;
      }
      break;
    }
    case bc::Op::JmpNZ: {
      bool Cond = runtime::toBool(Pop());
      if (Cond) {
        Pc = In.targetImm();
        continue;
      }
      break;
    }
    case bc::Op::FCall: {
      uint32_t N = In.countImm();
      assert(Stack.size() >= N && "verifier guarantees arg availability");
      const Value *CallArgs = Stack.data() + (Stack.size() - N);
      Value Res = execFrame(In.funcImm(), CallArgs, N, Value::null(), FId,
                            Depth + 1);
      Stack.resize(Stack.size() - N);
      Push(Res);
      if (Aborted)
        Pc = static_cast<uint32_t>(CodeSize);
      break;
    }
    case bc::Op::FCallObj: {
      uint32_t N = In.countImm();
      assert(Stack.size() >= N + 1 && "verifier guarantees receiver + args");
      Value Recv = Stack[Stack.size() - N - 1];
      const Value *CallArgs = Stack.data() + (Stack.size() - N);
      Value Res;
      if (!Recv.isObj()) {
        Res = fault();
      } else {
        bc::FuncId Callee = Recv.O->Layout->findMethod(In.strImm());
        if (!Callee.valid()) {
          Res = fault();
        } else {
          if (Callbacks)
            Callbacks->onVirtualCall(FId, Pc, Callee);
          Res = execFrame(Callee, CallArgs, N, Recv, FId, Depth + 1);
        }
      }
      Stack.resize(Stack.size() - N - 1);
      Push(Res);
      if (Aborted)
        Pc = static_cast<uint32_t>(CodeSize);
      break;
    }
    case bc::Op::NativeCall: {
      uint32_t N = In.countImm();
      assert(Stack.size() >= N && "verifier guarantees arg availability");
      const runtime::Builtin &Native = Builtins.builtin(In.builtinImm());
      runtime::NativeContext Ctx{H, Output};
      Value Res = Native.Fn(Ctx, Stack.data() + (Stack.size() - N), N);
      Stack.resize(Stack.size() - N);
      Push(Res);
      break;
    }
    case bc::Op::NewObj: {
      const runtime::ClassLayout &Layout = Classes.layout(In.clsImm());
      Push(Value::obj(H.allocObject(&Layout, Layout.numSlots())));
      break;
    }
    case bc::Op::GetProp: {
      Value Obj = Pop();
      if (!Obj.isObj()) {
        Push(fault());
        break;
      }
      int64_t Slot = Obj.O->Layout->findSlot(In.strImm());
      if (Slot < 0) {
        Push(fault());
        break;
      }
      if (Callbacks)
        Callbacks->onPropAccess(Obj.O->Layout->id(), In.strImm(),
                                /*IsWrite=*/false,
                                Obj.O->slotAddr(static_cast<uint32_t>(Slot)));
      if (Callbacks)
        Callbacks->onTypeObserve(FId, Pc,
                                 Obj.O->Slots[static_cast<size_t>(Slot)].T);
      Push(Obj.O->Slots[static_cast<size_t>(Slot)]);
      break;
    }
    case bc::Op::SetProp: {
      Value V = Pop();
      Value Obj = Pop();
      if (!Obj.isObj()) {
        (void)fault();
        break;
      }
      int64_t Slot = Obj.O->Layout->findSlot(In.strImm());
      if (Slot < 0) {
        (void)fault();
        break;
      }
      if (Callbacks)
        Callbacks->onPropAccess(Obj.O->Layout->id(), In.strImm(),
                                /*IsWrite=*/true,
                                Obj.O->slotAddr(static_cast<uint32_t>(Slot)));
      Obj.O->Slots[static_cast<size_t>(Slot)] = V;
      break;
    }
    case bc::Op::GetThis:
      Push(This);
      break;
    case bc::Op::RetC:
      RetVal = Pop();
      Pc = static_cast<uint32_t>(CodeSize);
      continue;
    }
    ++Pc;
  }

  if (InstrCounts) {
    if (InstrCounts->size() < R.numFuncs())
      InstrCounts->resize(R.numFuncs(), 0);
    (*InstrCounts)[FId.raw()] += FrameSteps;
  }
  if (Callbacks)
    Callbacks->onFuncExit(FId);
  return RetVal;
}
