//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution observation interface.
///
/// The interpreter is the single semantic core for every execution tier;
/// tiers differ in *what is observed* while code runs.  The tier-1
/// profiling translator attaches a callback that bumps bytecode-block
/// counters and call-target profiles; the seeder's instrumented optimized
/// code attaches one that additionally counts Vasm blocks, function entries
/// and property accesses; steady-state measurement attaches the Vasm
/// tracer that feeds the micro-architecture simulator.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_INTERP_EXECCALLBACKS_H
#define JUMPSTART_INTERP_EXECCALLBACKS_H

#include "bytecode/Ids.h"
#include "runtime/Value.h"

#include <cstdint>

namespace jumpstart::interp {

/// Observation hooks; all default to no-ops.  Invoked only when a callback
/// object is attached, so the unobserved interpreter stays fast.
class ExecCallbacks {
public:
  virtual ~ExecCallbacks() = default;

  /// A frame for \p Callee was entered from \p Caller (invalid FuncId for
  /// the request's entry point) with \p NumArgs arguments in \p Args.
  virtual void onFuncEnter(bc::FuncId Callee, bc::FuncId Caller,
                           const runtime::Value *Args, uint32_t NumArgs) {
    (void)Callee;
    (void)Caller;
    (void)Args;
    (void)NumArgs;
  }

  /// The frame for \p F returned.
  virtual void onFuncExit(bc::FuncId F) { (void)F; }

  /// Execution entered bytecode basic block \p Block of \p F.
  virtual void onBlockEnter(bc::FuncId F, uint32_t Block) {
    (void)F;
    (void)Block;
  }

  /// Per-instruction trace filter: when true for \p F, onInstr fires for
  /// each executed instruction of \p F.  Queried once per frame entry.
  virtual bool wantsInstrTrace(bc::FuncId F) {
    (void)F;
    return false;
  }

  /// Instruction \p InstrIndex of \p F is about to execute at call depth
  /// \p Depth (only when wantsInstrTrace(F) returned true).
  virtual void onInstr(bc::FuncId F, uint32_t InstrIndex, uint32_t Depth) {
    (void)F;
    (void)InstrIndex;
    (void)Depth;
  }

  /// A virtual (FCallObj) dispatch at \p InstrIndex of \p Caller resolved
  /// to \p Callee.  Drives the JIT's call-target profiles.
  virtual void onVirtualCall(bc::FuncId Caller, uint32_t InstrIndex,
                             bc::FuncId Callee) {
    (void)Caller;
    (void)InstrIndex;
    (void)Callee;
  }

  /// A dynamically-typed operation at instruction \p InstrIndex of \p F
  /// observed runtime type \p T (the primary operand or result type).
  /// Drives the tier-1 type profile used for specialization.
  virtual void onTypeObserve(bc::FuncId F, uint32_t InstrIndex,
                             runtime::Type T) {
    (void)F;
    (void)InstrIndex;
    (void)T;
  }

  /// Property \p Prop of class \p Cls was accessed at simulated address
  /// \p Addr.  Drives the property-access profile (paper section V-C) and
  /// the D-cache simulation.
  virtual void onPropAccess(bc::ClassId Cls, bc::StringId Prop, bool IsWrite,
                            uint64_t Addr) {
    (void)Cls;
    (void)Prop;
    (void)IsWrite;
    (void)Addr;
  }

  /// A container element at simulated address \p Addr was accessed.
  virtual void onDataAccess(uint64_t Addr, bool IsWrite) {
    (void)Addr;
    (void)IsWrite;
  }
};

} // namespace jumpstart::interp

#endif // JUMPSTART_INTERP_EXECCALLBACKS_H
