//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The replayable failure corpus.  Every fuzzing harness in this library
/// is seed-driven, so a failure is fully described by (kind, seed): when
/// a fuzz test fails it dumps one small text file under tests/corpus/,
/// and a dedicated ctest replays every checked-in entry on every run --
/// regressions stay fixed.
///
/// Entry format (one per file, extension .corpus):
///
///   # free-form comment lines
///   kind=pkg_struct
///   seed=7
///   note=out-of-range profiled function id
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_TESTING_CORPUS_H
#define JUMPSTART_TESTING_CORPUS_H

#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jumpstart::testing {

/// One replayable failure.  Kind selects the harness:
///   pkg_struct       -- semantic package mutation + consumer boot
///   pkg_byteflip     -- wire-level byte flips and truncations
///   pkg_distribution -- in-store corruption after publication
///   pkg_drift        -- rebase onto a drifted release + consumer boot
///   diff_program     -- differential sweep of one generated program
struct CorpusEntry {
  std::string Kind;
  uint64_t Seed = 0;
  /// Human context, e.g. the original failure message.
  std::string Note;
  /// File the entry was loaded from ("" for fresh entries).
  std::string Path;
};

/// Serializes \p E to the .corpus text format.
std::string renderCorpusEntry(const CorpusEntry &E);

/// Parses one .corpus file's contents.  Unknown keys are ignored (forward
/// compatibility); a missing kind or seed fails.
support::Status parseCorpusEntry(const std::string &Text, CorpusEntry &E);

/// Loads every *.corpus file under \p Dir, sorted by filename so replay
/// order is deterministic.  A missing directory yields an empty corpus.
std::vector<CorpusEntry> loadCorpusDir(const std::string &Dir);

/// Writes \p E as Dir/<kind>-<seed>.corpus (creating Dir), and returns
/// the path written to via \p PathOut.
support::Status writeCorpusEntry(const std::string &Dir,
                                 const CorpusEntry &E,
                                 std::string *PathOut = nullptr);

} // namespace jumpstart::testing

#endif // JUMPSTART_TESTING_CORPUS_H
