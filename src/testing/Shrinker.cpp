//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "testing/Shrinker.h"

#include "support/Assert.h"

#include <cstddef>

using namespace jumpstart;
using namespace jumpstart::testing;

GenProgram
jumpstart::testing::shrinkProgram(GenProgram Prog,
                                  const ShrinkPredicate &StillFails,
                                  uint32_t MaxPredicateCalls,
                                  ShrinkStats *Stats) {
  ShrinkStats Local;
  ShrinkStats &S = Stats ? *Stats : Local;

  auto Try = [&](const GenProgram &Candidate) {
    if (S.PredicateCalls >= MaxPredicateCalls)
      return false;
    ++S.PredicateCalls;
    if (!StillFails(Candidate))
      return false;
    ++S.Removals;
    return true;
  };

  // Greedy fixpoint: each pass walks every removable unit once; repeat
  // while anything was removed.  Larger units first (whole functions,
  // whole classes) so statement passes run on an already-small program.
  bool Progress = true;
  while (Progress && S.PredicateCalls < MaxPredicateCalls) {
    Progress = false;

    for (size_t F = 0; F < Prog.Funcs.size();) {
      GenProgram Candidate = Prog;
      Candidate.Funcs.erase(Candidate.Funcs.begin() +
                            static_cast<ptrdiff_t>(F));
      if (Try(Candidate)) {
        Prog = std::move(Candidate);
        Progress = true;
      } else {
        ++F;
      }
    }

    for (size_t C = 0; C < Prog.Classes.size();) {
      GenProgram Candidate = Prog;
      Candidate.Classes.erase(Candidate.Classes.begin() +
                              static_cast<ptrdiff_t>(C));
      if (Try(Candidate)) {
        Prog = std::move(Candidate);
        Progress = true;
      } else {
        ++C;
      }
    }

    for (size_t F = 0; F < Prog.Funcs.size(); ++F) {
      for (size_t St = 0; St < Prog.Funcs[F].Stmts.size();) {
        GenProgram Candidate = Prog;
        Candidate.Funcs[F].Stmts.erase(
            Candidate.Funcs[F].Stmts.begin() + static_cast<ptrdiff_t>(St));
        if (Try(Candidate)) {
          Prog = std::move(Candidate);
          Progress = true;
        } else {
          ++St;
        }
      }
    }

    // Return-expression simplification: a constant return keeps the
    // function well-formed while discarding an irrelevant expression
    // tree.
    for (size_t F = 0; F < Prog.Funcs.size(); ++F) {
      if (Prog.Funcs[F].ReturnExpr == "0")
        continue;
      GenProgram Candidate = Prog;
      Candidate.Funcs[F].ReturnExpr = "0";
      if (Try(Candidate)) {
        Prog = std::move(Candidate);
        Progress = true;
      }
    }
  }
  return Prog;
}
