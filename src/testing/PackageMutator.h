//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Package-mutation fuzzing as a library.  Jump-Start's safety story
/// (paper section VI) rests on two layers: the wire format rejects
/// anything corrupted in transit, and the strict package lint rejects
/// anything checksum-clean but semantically wrong.  The checkers here
/// fuzz both layers from a genuine seeder-produced package; each returns
/// "" on success or a failure description, so the same code backs the
/// gtest fuzzers (tests/FuzzTest.cpp) and the corpus replayer.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_TESTING_PACKAGEMUTATOR_H
#define JUMPSTART_TESTING_PACKAGEMUTATOR_H

#include "core/Consumer.h"
#include "fleet/WorkloadGen.h"
#include "profile/ProfilePackage.h"
#include "support/Random.h"
#include "testing/Corpus.h"
#include "vm/Server.h"

#include <memory>
#include <string>

namespace jumpstart::testing {

/// A seeded workload plus the package a real seeder grew on it -- the
/// shared, immutable starting point of every package checker.  Building
/// it runs the full seeder workflow once; reuse across checks.
struct MutationEnv {
  std::unique_ptr<fleet::Workload> W;
  profile::ProfilePackage Seeded;
};

/// The small workload the environment is grown on (shared with the
/// drift checker, which regenerates drifted releases of the same site).
fleet::WorkloadParams mutationSiteParams();

/// Grows the environment (aborts on seeder-workflow bugs).
MutationEnv buildMutationEnv();

/// The consumer boot configuration the checkers use.
vm::ServerConfig mutationBaseConfig();
core::JumpStartOptions mutationOptions();

/// Applies one random semantic mutation to \p Pkg; \returns a description
/// for failure messages.  Some mutations are benign by design: the fuzzer
/// must also demonstrate the lint does not over-reject.
std::string mutatePackage(profile::ProfilePackage &Pkg, Rng &R);

/// Checkers.  Seed \p P selects the mutation stream exactly as the
/// original gtest fuzzers did, so checked-in corpus seeds replay the
/// historical failures byte-for-byte.  Each returns "" when the invariant
/// holds.
///
/// Struct mutation: re-serialized (checksum-clean) mutants must be
/// lint-rejected at consumer accept time or genuinely harmless, and the
/// boot outcome must agree with the lint verdict.
std::string checkStructMutation(const MutationEnv &Env, uint64_t P);
/// Wire fuzzing: byte flips and truncation bands must fail
/// deserialization cleanly (or survive into a lint that doesn't crash).
std::string checkByteFlips(const MutationEnv &Env, uint64_t P);
/// In-store corruption after publication must fall back, never crash.
std::string checkDistributionCorruption(const MutationEnv &Env,
                                        uint64_t P);
/// Drift scenario: the seeded package rebased onto a drifted release of
/// the same site must be lint-clean there and accepted by a consumer.
std::string checkDriftRebase(const MutationEnv &Env, uint64_t P);

/// Replays one corpus entry of a pkg_* kind; "" on pass, failure text
/// (including unknown-kind) otherwise.
std::string replayPackageEntry(const MutationEnv &Env,
                               const CorpusEntry &E);

} // namespace jumpstart::testing

#endif // JUMPSTART_TESTING_PACKAGEMUTATOR_H
