//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generative half of the differential conformance harness: a seeded
/// random generator that emits well-formed mini-Hack programs directly
/// against the frontend -- functions, classes, branches, bounded loops,
/// string/int ops and endpoint entry points -- with knobs for size and
/// shape.  No hand-written corpus is involved; the program space is the
/// corpus.
///
/// Programs are kept *structured* (one source line per statement, whole
/// class declarations as units) rather than flat text so that the
/// shrinker (Shrinker.h) can delta-debug a failure by removing lines and
/// re-rendering, instead of parsing source back apart.
///
/// Every generated program must compile and verify; ConformanceTest
/// sweeps seeds to enforce that invariant.  Dynamic faults at runtime are
/// intentional -- the VM's semantics are total, and the differential
/// oracle checks that every tier faults identically.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_TESTING_PROGRAMGEN_H
#define JUMPSTART_TESTING_PROGRAMGEN_H

#include <cstdint>
#include <string>
#include <vector>

namespace jumpstart::testing {

/// Shape knobs for the generator.  Defaults produce small programs (a
/// handful of functions, ~20-40 source lines) that still exercise calls,
/// classes, branches, loops and the string/int operator set.
struct GenParams {
  uint64_t Seed = 1;
  /// Non-endpoint helper functions (f0, f1, ...); helper I only calls
  /// helpers with index < I, so call graphs are acyclic by construction.
  uint32_t MinHelpers = 1;
  uint32_t MaxHelpers = 4;
  /// Endpoint entry points (endpoint0, ...): what the differential
  /// oracle drives requests against.  Must be >= 1.
  uint32_t NumEndpoints = 2;
  /// Statements per function body (the fixed trailing return is extra).
  uint32_t MinStmts = 1;
  uint32_t MaxStmts = 4;
  /// Maximum expression nesting depth.
  uint32_t MaxExprDepth = 3;
  /// Upper bound for while-loop trip counts (loops are always bounded by
  /// construction; runaway execution is the step budget's job).
  uint32_t MaxLoopBound = 5;
  /// Classes (K0, K1, ...), each with props and set/get methods.
  uint32_t NumClasses = 1;
};

/// One generated function.  Statements are self-contained single source
/// lines (an `if` or `while` renders inline), so removing any one of
/// them leaves a program that still parses.
struct GenFunc {
  std::string Name;
  std::vector<std::string> Stmts;
  /// The trailing `return <expr>;` -- kept separate from Stmts so the
  /// shrinker can try simplifying it to a constant without losing the
  /// return statement itself.
  std::string ReturnExpr;
  bool IsEndpoint = false;
};

/// A structured program: class declarations (whole-unit removable) plus
/// functions.
struct GenProgram {
  std::vector<std::string> Classes;
  std::vector<GenFunc> Funcs;

  /// Names of the endpoint functions, in declaration order.
  std::vector<std::string> endpointNames() const;
  /// Renders to mini-Hack source.
  std::string render() const;
  /// Source lines of render() -- the unit of the "reproducer <= N lines"
  /// acceptance criterion.
  size_t sourceLines() const;
};

/// Generates one program.  Deterministic: equal \p P (including Seed)
/// yields byte-identical source.
GenProgram generateProgram(const GenParams &P);

} // namespace jumpstart::testing

#endif // JUMPSTART_TESTING_PROGRAMGEN_H
