//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "testing/ProgramGen.h"

#include "support/Assert.h"
#include "support/Random.h"
#include "support/StringUtil.h"

#include <algorithm>

using namespace jumpstart;
using namespace jumpstart::testing;

namespace {

/// Per-program generation state: the rng, the shape knobs, and how many
/// helpers/classes exist (for generating calls and `new` expressions).
class Generator {
public:
  Generator(const GenParams &P) : P(P), R(P.Seed) {}

  GenProgram run() {
    GenProgram Prog;
    uint32_t NumHelpers =
        P.MinHelpers +
        static_cast<uint32_t>(R.nextBelow(P.MaxHelpers - P.MinHelpers + 1));
    for (uint32_t C = 0; C < P.NumClasses; ++C)
      Prog.Classes.push_back(genClass(C));
    NumClasses = P.NumClasses;
    for (uint32_t F = 0; F < NumHelpers; ++F) {
      // Helper F may call helpers [0, F): acyclic by construction.
      Callable = F;
      Prog.Funcs.push_back(genFunction(strFormat("f%u", F), false));
    }
    Callable = NumHelpers;
    for (uint32_t E = 0; E < std::max(1u, P.NumEndpoints); ++E)
      Prog.Funcs.push_back(
          genFunction(strFormat("endpoint%u", E), true));
    return Prog;
  }

private:
  std::string genClass(uint32_t Index) {
    // Fixed skeleton, generated arithmetic: props behave like the
    // workload generator's data classes, and `get` mixes int and string
    // ops so property reordering has observable-but-equal behaviour.
    int64_t A = 1 + static_cast<int64_t>(R.nextBelow(9));
    int64_t B = 2 + static_cast<int64_t>(R.nextBelow(7));
    const char *Mix = R.nextBool(0.5) ? "+" : "*";
    return strFormat("class K%u {\n"
                     "  prop $a; prop $b; prop $c;\n"
                     "  method set($v) { $this->a = ($v %s %lld); "
                     "$this->b = ($v * %lld); $this->c = $v; "
                     "return $this; }\n"
                     "  method get() { return (($this->a + $this->b) %s "
                     "$this->c); }\n"
                     "}",
                     Index, Mix, static_cast<long long>(A),
                     static_cast<long long>(B),
                     R.nextBool(0.5) ? "+" : "-");
  }

  std::string randVar() {
    // A small fixed pool: reads of a never-assigned variable are legal
    // (null), which is what keeps statement removal by the shrinker from
    // producing uncompilable programs.
    return strFormat("$v%u", static_cast<uint32_t>(R.nextBelow(5)));
  }

  std::string genLeaf() {
    switch (R.nextBelow(7)) {
    case 0:
      return strFormat("%d", static_cast<int>(R.nextBelow(100)));
    case 1:
      return strFormat("%d.5", static_cast<int>(R.nextBelow(9)));
    case 2:
      return strFormat("\"s%u\"", static_cast<uint32_t>(R.nextBelow(10)));
    case 3:
      return R.nextBool(0.5) ? "true" : "false";
    case 4:
      return "null";
    case 5:
      return "$x";
    default:
      return randVar();
    }
  }

  std::string genExpr(uint32_t Depth) {
    if (Depth == 0 || R.nextBool(0.3))
      return genLeaf();
    switch (R.nextBelow(10)) {
    case 0: {
      static const char *Ops[] = {"+", "-",  "*",  "/", "%", ".",
                                  "==", "!=", "<", "<=", ">", ">="};
      return strFormat("(%s %s %s)", genExpr(Depth - 1).c_str(),
                       Ops[R.nextBelow(12)], genExpr(Depth - 1).c_str());
    }
    case 1:
      return strFormat("(%s %s %s)", genExpr(Depth - 1).c_str(),
                       R.nextBool(0.5) ? "&&" : "||",
                       genExpr(Depth - 1).c_str());
    case 2:
      return strFormat("(!%s)", genExpr(Depth - 1).c_str());
    case 3:
      return strFormat("vec[%s, %s]", genExpr(Depth - 1).c_str(),
                       genExpr(Depth - 1).c_str());
    case 4:
      return strFormat("dict[\"k\" => %s]", genExpr(Depth - 1).c_str());
    case 5:
      return strFormat("%s[%s]", genExpr(Depth - 1).c_str(),
                       genExpr(Depth - 1).c_str());
    case 6: {
      // String/int builtins; all total, all deterministic.
      switch (R.nextBelow(5)) {
      case 0:
        return strFormat("abs(%s)", genExpr(Depth - 1).c_str());
      case 1:
        return strFormat("min(%s, %s)", genExpr(Depth - 1).c_str(),
                         genExpr(Depth - 1).c_str());
      case 2:
        return strFormat("max(%s, %s)", genExpr(Depth - 1).c_str(),
                         genExpr(Depth - 1).c_str());
      case 3:
        return strFormat("strlen(to_str(%s))",
                         genExpr(Depth - 1).c_str());
      default:
        return strFormat("str_repeat(\"r%u\", %u)",
                         static_cast<uint32_t>(R.nextBelow(4)),
                         static_cast<uint32_t>(1 + R.nextBelow(3)));
      }
    }
    case 7:
      if (Callable > 0)
        return strFormat("f%u(%s)",
                         static_cast<uint32_t>(R.nextBelow(Callable)),
                         genExpr(Depth - 1).c_str());
      return strFormat("abs(%s)", genExpr(Depth - 1).c_str());
    case 8:
      if (NumClasses > 0)
        return strFormat("new K%u()->set(%s)->get()",
                         static_cast<uint32_t>(R.nextBelow(NumClasses)),
                         genExpr(Depth - 1).c_str());
      return genLeaf();
    default:
      return strFormat("(%s . to_str(%s))", genExpr(Depth - 1).c_str(),
                       genExpr(Depth - 1).c_str());
    }
  }

  /// A one-line simple statement usable inside if/while bodies.
  std::string genSimpleStmt() {
    if (R.nextBool(0.6))
      return strFormat("%s = %s;", randVar().c_str(),
                       genExpr(1).c_str());
    return strFormat("print(to_str(%s));", genExpr(1).c_str());
  }

  /// A self-contained single-line statement.
  std::string genStmt(uint32_t LoopIndex) {
    switch (R.nextBelow(6)) {
    case 0:
    case 1:
      return strFormat("%s = %s;", randVar().c_str(),
                       genExpr(P.MaxExprDepth).c_str());
    case 2:
      return strFormat("print(to_str(%s));", genExpr(2).c_str());
    case 3:
      return strFormat("if (%s) { %s } else { %s }",
                       genExpr(1).c_str(), genSimpleStmt().c_str(),
                       genSimpleStmt().c_str());
    case 4: {
      // Init + bounded loop on one line so the whole loop is a single
      // removable unit.
      std::string I = strFormat("$i%u", LoopIndex);
      return strFormat("%s = 0; while (%s < %u) { %s %s = (%s + 1); }",
                       I.c_str(), I.c_str(),
                       static_cast<uint32_t>(1 + R.nextBelow(
                                                     P.MaxLoopBound)),
                       genSimpleStmt().c_str(), I.c_str(), I.c_str());
    }
    default:
      return strFormat("if (%s) { return %s; }", genExpr(1).c_str(),
                       genExpr(2).c_str());
    }
  }

  GenFunc genFunction(std::string Name, bool IsEndpoint) {
    GenFunc F;
    F.Name = std::move(Name);
    F.IsEndpoint = IsEndpoint;
    uint32_t Stmts =
        P.MinStmts +
        static_cast<uint32_t>(R.nextBelow(P.MaxStmts - P.MinStmts + 1));
    for (uint32_t S = 0; S < Stmts; ++S)
      F.Stmts.push_back(genStmt(S));
    F.ReturnExpr = genExpr(P.MaxExprDepth);
    return F;
  }

  const GenParams &P;
  Rng R;
  uint32_t Callable = 0;
  uint32_t NumClasses = 0;
};

} // namespace

std::vector<std::string> GenProgram::endpointNames() const {
  std::vector<std::string> Names;
  for (const GenFunc &F : Funcs)
    if (F.IsEndpoint)
      Names.push_back(F.Name);
  return Names;
}

std::string GenProgram::render() const {
  std::string Out;
  for (const std::string &C : Classes) {
    Out += C;
    Out += "\n";
  }
  for (const GenFunc &F : Funcs) {
    Out += strFormat("function %s($x) {\n", F.Name.c_str());
    for (const std::string &S : F.Stmts) {
      Out += "  ";
      Out += S;
      Out += "\n";
    }
    Out += strFormat("  return %s;\n}\n", F.ReturnExpr.c_str());
  }
  return Out;
}

size_t GenProgram::sourceLines() const {
  std::string Src = render();
  return static_cast<size_t>(std::count(Src.begin(), Src.end(), '\n'));
}

GenProgram jumpstart::testing::generateProgram(const GenParams &P) {
  alwaysAssert(P.MaxHelpers >= P.MinHelpers && P.MaxStmts >= P.MinStmts,
               "inverted GenParams range");
  return Generator(P).run();
}
