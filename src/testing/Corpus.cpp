//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "testing/Corpus.h"

#include "support/StringUtil.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace jumpstart;
using namespace jumpstart::testing;
using support::Status;
using support::StatusCode;

std::string jumpstart::testing::renderCorpusEntry(const CorpusEntry &E) {
  std::string Out = "# replayable fuzz failure; see src/testing/Corpus.h\n";
  Out += strFormat("kind=%s\n", E.Kind.c_str());
  Out += strFormat("seed=%llu\n", static_cast<unsigned long long>(E.Seed));
  if (!E.Note.empty()) {
    // Notes are one line; newlines would break the format.
    std::string Note = E.Note;
    std::replace(Note.begin(), Note.end(), '\n', ' ');
    Out += strFormat("note=%s\n", Note.c_str());
  }
  return Out;
}

Status jumpstart::testing::parseCorpusEntry(const std::string &Text,
                                            CorpusEntry &E) {
  bool HaveKind = false;
  bool HaveSeed = false;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    size_t Eq = Line.find('=');
    if (Eq == std::string::npos)
      return support::errorStatus(StatusCode::CorruptData,
                                  "corpus line without '=': %s",
                                  Line.c_str());
    std::string Key = Line.substr(0, Eq);
    std::string Val = Line.substr(Eq + 1);
    if (Key == "kind") {
      E.Kind = Val;
      HaveKind = true;
    } else if (Key == "seed") {
      char *End = nullptr;
      E.Seed = std::strtoull(Val.c_str(), &End, 10);
      if (End == Val.c_str() || *End != '\0')
        return support::errorStatus(StatusCode::CorruptData,
                                    "bad corpus seed: %s", Val.c_str());
      HaveSeed = true;
    } else if (Key == "note") {
      E.Note = Val;
    }
    // Unknown keys: ignored for forward compatibility.
  }
  if (!HaveKind || !HaveSeed)
    return Status::error(StatusCode::CorruptData,
                         "corpus entry missing kind or seed");
  return Status::okStatus();
}

std::vector<CorpusEntry>
jumpstart::testing::loadCorpusDir(const std::string &Dir) {
  std::vector<CorpusEntry> Entries;
  std::error_code Ec;
  std::vector<std::filesystem::path> Paths;
  for (const auto &DirEnt :
       std::filesystem::directory_iterator(Dir, Ec)) {
    if (DirEnt.path().extension() == ".corpus")
      Paths.push_back(DirEnt.path());
  }
  std::sort(Paths.begin(), Paths.end());
  for (const std::filesystem::path &P : Paths) {
    std::ifstream In(P);
    std::stringstream Buf;
    Buf << In.rdbuf();
    CorpusEntry E;
    if (parseCorpusEntry(Buf.str(), E).ok()) {
      E.Path = P.string();
      Entries.push_back(std::move(E));
    }
  }
  return Entries;
}

Status jumpstart::testing::writeCorpusEntry(const std::string &Dir,
                                            const CorpusEntry &E,
                                            std::string *PathOut) {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  std::string Path =
      strFormat("%s/%s-%llu.corpus", Dir.c_str(), E.Kind.c_str(),
                static_cast<unsigned long long>(E.Seed));
  std::ofstream Out(Path);
  if (!Out)
    return support::errorStatus(StatusCode::IoError,
                                "cannot write corpus entry %s",
                                Path.c_str());
  Out << renderCorpusEntry(E);
  if (PathOut)
    *PathOut = Path;
  return Status::okStatus();
}
