//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential oracle: executes generated programs under a matrix of
/// server configurations -- interpreter-only, JIT tier-by-tier, cold boot
/// vs Jump-Start consumer boot from a seeder-published package, layout
/// optimization flags on/off, host compile pool 1/N -- and checks that
///
///  (a) every configuration produces identical observable results per
///      request (return value, printed output, fault count, abort flag);
///  (b) configurations that promise byte-identical determinism (the
///      `--threads` axis) produce identical placement/metrics digests;
///  (c) any mismatch is shrunk to a minimal reproducer and written, with
///      the offending config pair, to a repro/ artifact directory.
///
/// This is the executable form of the paper's core claim that Jump-Start
/// is semantically invisible: a consumer booted from a shared profile
/// package must behave exactly like one that warmed up on its own.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_TESTING_DIFFRUNNER_H
#define JUMPSTART_TESTING_DIFFRUNNER_H

#include "fleet/WorkloadGen.h"
#include "support/Status.h"
#include "testing/ProgramGen.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jumpstart::testing {

/// One cell of the configuration matrix.
struct ExecConfig {
  std::string Name;
  enum class Tier : uint8_t {
    /// Bare interpreter, no server, no JIT: the semantic reference.
    InterpOnly,
    /// A server whose JIT never leaves the profiling tier.
    ProfileOnly,
    /// A server that reaches retranslate-all mid-schedule.
    FullJit,
  };
  Tier Mode = Tier::FullJit;
  /// Boot as a Jump-Start consumer from a seeder-published package
  /// (core::startConsumer against a real PackageManager) instead of cold.
  bool JumpStart = false;
  // Layout / optimization axes (server tiers only).
  bool UseExtTsp = true;
  bool SplitHotCold = true;
  bool UseFunctionSort = true;
  bool ReorderProperties = true;
  /// Whole-program analysis facts drive the JIT: proven guard elision,
  /// proven devirtualization and interpreter IC pre-seeding
  /// (core::JumpStartOptions::ProvenGuardElision).  Legitimately changes
  /// the placement digest (fewer guards lower to fewer bytes) but must
  /// never change an observable; the ablation sweep asserts the
  /// observables-only digest is identical with the flag on and off, and
  /// every run re-proves each recorded elision through
  /// analysis::lintTranslations.
  bool ProvenGuardElision = false;
  /// Host compile-pool workers (the --threads axis).  Host-only: must
  /// never change an observable or an exported byte.
  uint32_t HostThreads = 1;
  /// Run all interpretation on the legacy engine
  /// (interp::InterpEngine::Legacy) instead of the fast one.  Host-only,
  /// like HostThreads: the engines promise identical observables AND
  /// identical determinism digests, which the "engine" digest group
  /// asserts byte-for-byte.
  bool LegacyInterp = false;
  /// Test-only interpreter divergence injection, added to every integer
  /// Add result (interp::InterpOptions::TestOnlyIntAddSkew).  The oracle
  /// must catch any nonzero value as a cross-config mismatch.
  int64_t IntAddSkew = 0;
  /// When > 0, the schedule is served through a concurrent-serving
  /// window (vm::Server::serve) by this many closed-loop client threads
  /// over as many execution contexts, instead of serially.  Host-only
  /// by contract: per-request observables and the determinism digest
  /// must match any other thread count -- the "serve" digest group in
  /// serveMatrix() asserts 1 vs N byte-for-byte.
  uint32_t ServeThreads = 0;
  /// Configs sharing a non-empty group must produce byte-identical
  /// determinism digests (how the --threads promise is asserted).
  std::string DigestGroup;
};

/// The full matrix (every tier, Jump-Start on/off, each layout flag
/// toggled, threads 1/4) and the smaller smoke matrix CI runs.
std::vector<ExecConfig> fullMatrix();
std::vector<ExecConfig> smokeMatrix();
/// The concurrent-serving matrix: the interpreter reference plus
/// Jump-Start-booted servers serving through 1 and N client threads,
/// digest-grouped so the thread-count axis is asserted byte-identical.
std::vector<ExecConfig> serveMatrix(uint32_t Threads = 4);
/// The injected-divergence config for harness self-tests.
ExecConfig skewConfig();

/// Observables of one request -- everything a client could see.
struct RequestObs {
  std::string Ret;
  std::string Output;
  uint64_t Faults = 0;
  bool Ok = true;
  bool operator==(const RequestObs &) const = default;
};

/// One configuration's run over one program.
struct RunTrace {
  std::vector<RequestObs> Requests;
  /// Determinism digest: translation placement plus exported metrics
  /// (empty for InterpOnly).
  std::string Digest;
  bool BootedJumpStart = false;
  /// First elision-re-proof failure from analysis::lintTranslations
  /// (ProvenGuardElision cells only; "" when every elision re-proved).
  std::string ElisionLint;
};

/// One verified divergence between two configurations.
struct Mismatch {
  uint64_t ProgramSeed = 0;
  std::string ConfigA;
  std::string ConfigB;
  /// First observed difference, human-readable.
  std::string What;
  std::string Source;
  /// Delta-debugged minimal reproducer (== Source when shrinking is off).
  std::string Shrunk;
  size_t ShrunkLines = 0;
  /// Where the reproducer was written ("" when no ReproDir was set).
  std::string ArtifactPath;
};

/// Sweep parameters.
struct DiffParams {
  /// Shape knobs for generated programs; Seed is overridden per program.
  GenParams Gen;
  /// Sweep seed: program I uses seed Seed * 1000003 + I.
  uint64_t Seed = 1;
  uint32_t NumPrograms = 50;
  /// Requests served per configuration (round-robin over endpoints with
  /// a deterministic argument stream).
  uint32_t RequestsPerProgram = 24;
  /// Configuration matrix; empty selects smokeMatrix().
  std::vector<ExecConfig> Matrix;
  /// Delta-debug mismatches down to minimal reproducers.
  bool Shrink = true;
  /// Directory for reproducer artifacts ("" writes nothing).
  std::string ReproDir;
};

/// Sweep outcome.
struct DiffStats {
  uint32_t Programs = 0;
  uint32_t Runs = 0;
  uint32_t JumpStartBoots = 0;
  uint32_t DigestComparisons = 0;
  std::vector<Mismatch> Mismatches;
  /// FNV-1a over every program source, observable and digest.  Re-running
  /// the same sweep must reproduce it bit-for-bit; ci/check.sh and the
  /// tier-2 sweep enforce that.
  uint64_t SweepDigest = 0;
  /// FNV-1a over program sources and per-request observables only -- no
  /// config names, no placement/metrics digests.  Two sweeps over the
  /// same programs whose matrices differ only in host- or
  /// placement-level axes (ProvenGuardElision on vs off) must produce
  /// the identical ObsDigest even though their SweepDigests differ.
  uint64_t ObsDigest = 0;
};

class DiffRunner {
public:
  explicit DiffRunner(DiffParams Params);

  /// Runs the whole sweep.
  DiffStats run();

  /// Diffs one program across the matrix, accumulating into \p Stats
  /// (used by the corpus replayer and by run()).
  void checkProgram(const GenProgram &Prog, uint64_t ProgramSeed,
                    DiffStats &Stats);

  /// Compiles \p Source into \p W (repo + endpoint list).  Fails when the
  /// frontend rejects it, the verifier rejects it, or no endpoint
  /// function exists.
  static support::Status compileProgram(const std::string &Source,
                                        fleet::Workload &W);

  /// Executes one configuration over a compiled program.
  RunTrace runConfig(const fleet::Workload &W, const ExecConfig &C) const;

  /// First semantic difference between two traces ("" when equal).
  static std::string compareTraces(const RunTrace &A, const RunTrace &B);

  const std::vector<ExecConfig> &matrix() const { return Params.Matrix; }

private:
  void recordMismatch(const GenProgram &Prog, uint64_t ProgramSeed,
                      const ExecConfig &A, const ExecConfig &B,
                      std::string What, bool DigestOnly, DiffStats &Stats);

  DiffParams Params;
};

} // namespace jumpstart::testing

#endif // JUMPSTART_TESTING_DIFFRUNNER_H
