//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Delta-debugging for generated programs: given a failing program and a
/// predicate ("still fails"), greedily remove whole functions, whole
/// classes and individual statements -- and simplify return expressions
/// to constants -- until no single removal preserves the failure.
///
/// The predicate sees a *candidate program*; it must return true only
/// when the candidate both compiles and still exhibits the original
/// failure (DiffRunner builds exactly that predicate from the mismatching
/// config pair).  Removals that break compilation therefore revert
/// automatically.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_TESTING_SHRINKER_H
#define JUMPSTART_TESTING_SHRINKER_H

#include "testing/ProgramGen.h"

#include <functional>

namespace jumpstart::testing {

/// True when the candidate still reproduces the failure being shrunk.
using ShrinkPredicate = std::function<bool(const GenProgram &)>;

/// Statistics of one shrink run.
struct ShrinkStats {
  uint32_t PredicateCalls = 0;
  uint32_t Removals = 0;
};

/// Greedily minimizes \p Prog under \p StillFails.  \p MaxPredicateCalls
/// bounds the work (the greedy pass is O(lines^2) predicate calls in the
/// worst case; generated programs are tens of lines, so the default is
/// generous).  \returns the smallest program found; the input must
/// satisfy the predicate.
GenProgram shrinkProgram(GenProgram Prog, const ShrinkPredicate &StillFails,
                         uint32_t MaxPredicateCalls = 600,
                         ShrinkStats *Stats = nullptr);

} // namespace jumpstart::testing

#endif // JUMPSTART_TESTING_SHRINKER_H
