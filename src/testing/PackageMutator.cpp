//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "testing/PackageMutator.h"

#include "analysis/Linter.h"
#include "core/PackageManager.h"
#include "core/Seeder.h"
#include "fleet/Traffic.h"
#include "profile/PackageRebase.h"
#include "runtime/Builtins.h"
#include "support/Assert.h"
#include "support/StringUtil.h"

using namespace jumpstart;
using namespace jumpstart::testing;

namespace {

uint32_t numBuiltins() {
  return static_cast<uint32_t>(runtime::BuiltinTable::standard().size());
}

} // namespace

fleet::WorkloadParams jumpstart::testing::mutationSiteParams() {
  fleet::WorkloadParams P;
  P.NumHelpers = 120;
  P.NumClasses = 24;
  P.NumEndpoints = 12;
  P.NumUnits = 12;
  return P;
}

MutationEnv jumpstart::testing::buildMutationEnv() {
  MutationEnv Env;
  Env.W = fleet::generateWorkload(mutationSiteParams());

  fleet::TrafficModel Traffic(*Env.W, fleet::TrafficParams(), 42);
  core::PackageManager Manager;
  core::SeederParams SP;
  SP.Requests = 120;
  SP.Seed = 5;
  core::SeederOutcome Out = core::runSeederWorkflow(
      *Env.W, Traffic, mutationBaseConfig(), mutationOptions(), Manager, SP);
  alwaysAssert(Out.Published,
               Out.Problems.empty()
                   ? "mutation-env seeder failed to publish"
                   : Out.Problems.front().c_str());
  Env.Seeded = Out.Package;
  return Env;
}

vm::ServerConfig jumpstart::testing::mutationBaseConfig() {
  vm::ServerConfig C;
  C.Jit.ProfileRequestTarget = 20;
  return C;
}

core::JumpStartOptions jumpstart::testing::mutationOptions() {
  core::JumpStartOptions O;
  O.Coverage.MinProfiledFuncs = 3;
  O.Coverage.MinTotalSamples = 50;
  O.Coverage.MinPackageBytes = 64;
  O.ValidationRequests = 10;
  return O;
}

std::string jumpstart::testing::mutatePackage(profile::ProfilePackage &Pkg,
                                              Rng &R) {
  switch (R.nextBelow(10)) {
  case 0:
    if (Pkg.Preload.Strings.empty())
      Pkg.Preload.Strings.push_back(0);
    Pkg.Preload.Strings.push_back(Pkg.Preload.Strings.front());
    return "duplicate preload string";
  case 1:
    Pkg.Preload.Units.push_back(1u << 20);
    return "out-of-range preload unit";
  case 2:
    if (!Pkg.Funcs.empty())
      Pkg.Funcs[R.nextBelow(Pkg.Funcs.size())].Func = 1u << 20;
    return "out-of-range profiled function id";
  case 3:
    if (!Pkg.Funcs.empty())
      Pkg.Funcs[R.nextBelow(Pkg.Funcs.size())].BlockCounts.resize(4096, 0);
    return "oversized block-counter vector";
  case 4:
    if (!Pkg.Funcs.empty())
      Pkg.Funcs[R.nextBelow(Pkg.Funcs.size())].CallTargets[0xFFFFFF][0] = 1;
    return "call-target record past end of bytecode";
  case 5:
    if (!Pkg.Funcs.empty())
      Pkg.Funcs[R.nextBelow(Pkg.Funcs.size())].ParamTypes.resize(
          bc::kMaxCallArgs + 8);
    return "implausible parameter arity";
  case 6:
    Pkg.Opt.VasmBlockCounts[1u << 20] = {1, 2, 3};
    return "vasm counters for unknown function";
  case 7:
    Pkg.Opt.PropAccessCounts["NoSuchClass::p"] = 9;
    return "property counter for unknown class";
  case 8:
    Pkg.Intermediate.FuncOrder.push_back(1u << 20);
    return "out-of-range function-order entry";
  default:
    // Benign: counters only.  The lint must still pass and the consumer
    // must not log a lint rejection.
    for (profile::FuncProfile &F : Pkg.Funcs)
      F.EntryCount += 1;
    return "benign counter perturbation";
  }
}

std::string jumpstart::testing::checkStructMutation(const MutationEnv &Env,
                                                    uint64_t P) {
  Rng R(P * 31337);
  profile::ProfilePackage Mutant = Env.Seeded;
  std::string What = mutatePackage(Mutant, R);

  // The re-serialized mutant is checksum-clean and fingerprint-correct:
  // only the strict lint stands between it and the JIT.
  analysis::Linter L(Env.W->Repo, numBuiltins());
  size_t LintErrors = analysis::countErrors(L.lintPackage(Mutant));

  core::PackageManager Manager;
  support::Status Published = Manager.publish(0, 0, Mutant.serialize());
  alwaysAssert(Published.ok(), "publishing the mutant");
  core::ConsumerParams CP;
  CP.Seed = P;
  core::ConsumerOutcome Out = core::startConsumer(
      *Env.W, mutationBaseConfig(), mutationOptions(), Manager, CP);

  if (Out.Server == nullptr)
    return strFormat("fallback failed to boot a server (%s)",
                     What.c_str());
  bool SawLintRejection = false;
  for (const std::string &Line : Out.Log)
    if (Line.find("strict lint") != std::string::npos)
      SawLintRejection = true;

  if (LintErrors > 0) {
    if (Out.UsedJumpStart)
      return strFormat("lint-rejected package steered a boot (%s)",
                       What.c_str());
    if (!SawLintRejection)
      return strFormat("lint found errors but consumer never logged the "
                       "rejection (%s)",
                       What.c_str());
  } else if (SawLintRejection) {
    return strFormat("lint-clean package rejected as if it had errors "
                     "(%s)",
                     What.c_str());
  }
  return "";
}

std::string jumpstart::testing::checkByteFlips(const MutationEnv &Env,
                                               uint64_t P) {
  Rng R(P * 977);
  std::vector<uint8_t> Blob = Env.Seeded.serialize();
  if (Blob.empty())
    return "seeded package serialized to nothing";

  for (int I = 0; I < 200; ++I) {
    std::vector<uint8_t> Mutant = Blob;
    uint32_t Flips = 1 + static_cast<uint32_t>(R.nextBelow(8));
    for (uint32_t F = 0; F < Flips; ++F) {
      size_t Pos = R.nextBelow(Mutant.size());
      Mutant[Pos] ^= static_cast<uint8_t>(1 + R.nextBelow(255));
    }
    profile::ProfilePackage Out;
    if (profile::ProfilePackage::deserialize(Mutant, Out)) {
      // The checksum survived the flips (vanishingly rare).  Whatever
      // came out must still go through the lint without crashing.
      analysis::Linter L(Env.W->Repo, numBuiltins());
      (void)L.lintPackage(Out);
    }
  }

  // Every truncation band must be rejected, including the empty blob.
  for (size_t Len = 0; Len < Blob.size(); Len += 1 + Blob.size() / 64) {
    std::vector<uint8_t> Trunc(Blob.begin(),
                               Blob.begin() + static_cast<ptrdiff_t>(Len));
    profile::ProfilePackage Out;
    if (profile::ProfilePackage::deserialize(Trunc, Out))
      return strFormat("truncation to %zu bytes deserialized", Len);
  }
  return "";
}

std::string
jumpstart::testing::checkDistributionCorruption(const MutationEnv &Env,
                                                uint64_t P) {
  Rng R(P * 40503);
  core::PackageManager Manager;
  support::Status Published = Manager.publish(0, 0, Env.Seeded.serialize());
  alwaysAssert(Published.ok(), "publishing the seeded package");
  support::Status Corrupted = Manager.corrupt(0, 0, 0, R);
  if (!Corrupted.ok())
    return strFormat("manager corruption hook failed: %s",
                     Corrupted.message().c_str());

  core::ConsumerParams CP;
  CP.Seed = P;
  core::ConsumerOutcome Out = core::startConsumer(
      *Env.W, mutationBaseConfig(), mutationOptions(), Manager, CP);
  if (Out.Server == nullptr)
    return "consumer failed to boot after store corruption";
  return "";
}

std::string jumpstart::testing::checkDriftRebase(const MutationEnv &Env,
                                                 uint64_t P) {
  // A drifted release of the same small site; the seed steers how far it
  // drifted and along which plan.
  fleet::DriftParams D;
  D.Release = 1 + static_cast<uint32_t>(P % 3);
  D.DriftSeed = P * 131 + 7;
  auto W2 = fleet::generateDriftedWorkload(mutationSiteParams(), D);

  profile::ProfilePackage Rebased;
  profile::RebaseStats Stats;
  support::Status RebaseStatus = profile::rebasePackage(
      Env.Seeded, Env.W->Repo, W2->Repo,
      vm::Server::repoFingerprint(W2->Repo), Rebased, &Stats);
  if (!RebaseStatus.ok())
    return strFormat("rebase onto release %u failed: %s", D.Release,
                     RebaseStatus.message().c_str());

  // Invariant 1: whatever the rebase kept must be lint-clean against the
  // NEW repo -- the whole point of rebasing is not to hand the JIT stale
  // ids.
  analysis::Linter L(W2->Repo, numBuiltins());
  size_t LintErrors = analysis::countErrors(L.lintPackage(Rebased));
  if (LintErrors > 0)
    return strFormat("rebased package has %zu lint errors on release %u",
                     LintErrors, D.Release);

  // Invariant 2: a consumer on the drifted release accepts it (the
  // fingerprint was rewritten to the new repo) and boots with Jump-Start.
  core::PackageManager Manager;
  support::Status Published = Manager.publish(0, 0, Rebased.serialize());
  alwaysAssert(Published.ok(), "publishing the rebased package");
  core::ConsumerParams CP;
  CP.Seed = P;
  core::ConsumerOutcome Out = core::startConsumer(
      *W2, mutationBaseConfig(), mutationOptions(), Manager, CP);
  if (Out.Server == nullptr)
    return "consumer failed to boot on the drifted release";
  if (!Out.UsedJumpStart) {
    std::string Why = Out.Rejections.empty()
                          ? std::string("no rejection recorded")
                          : Out.Rejections.front().message();
    return strFormat("rebased package rejected on release %u: %s",
                     D.Release, Why.c_str());
  }
  return "";
}

std::string jumpstart::testing::replayPackageEntry(const MutationEnv &Env,
                                                   const CorpusEntry &E) {
  if (E.Kind == "pkg_struct")
    return checkStructMutation(Env, E.Seed);
  if (E.Kind == "pkg_byteflip")
    return checkByteFlips(Env, E.Seed);
  if (E.Kind == "pkg_distribution")
    return checkDistributionCorruption(Env, E.Seed);
  if (E.Kind == "pkg_drift")
    return checkDriftRebase(Env, E.Seed);
  return strFormat("unknown package corpus kind \"%s\"", E.Kind.c_str());
}
