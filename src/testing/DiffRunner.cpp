//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "testing/DiffRunner.h"

#include "analysis/Linter.h"
#include "bytecode/Verifier.h"
#include "core/Consumer.h"
#include "core/PackageManager.h"
#include "frontend/Compiler.h"
#include "interp/Interpreter.h"
#include "obs/Export.h"
#include "obs/Observability.h"
#include "runtime/Builtins.h"
#include "runtime/ClassLayout.h"
#include "runtime/Heap.h"
#include "runtime/ValueOps.h"
#include "support/Assert.h"
#include "support/StringUtil.h"
#include "support/ThreadPool.h"
#include "testing/Shrinker.h"
#include "vm/Server.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>

using namespace jumpstart;
using namespace jumpstart::testing;
using support::Status;
using support::StatusCode;

//===----------------------------------------------------------------------===//
// Matrices.
//===----------------------------------------------------------------------===//

std::vector<ExecConfig> jumpstart::testing::smokeMatrix() {
  std::vector<ExecConfig> M;
  ExecConfig Interp;
  Interp.Name = "interp";
  Interp.Mode = ExecConfig::Tier::InterpOnly;
  M.push_back(Interp);

  // The same semantic reference on the legacy interpreter engine: the
  // fast/legacy pair is diffed like any other cell, so every sweep is
  // also a cross-engine conformance run.
  ExecConfig InterpLegacy = Interp;
  InterpLegacy.Name = "interp-legacy";
  InterpLegacy.LegacyInterp = true;
  M.push_back(InterpLegacy);

  ExecConfig Profile;
  Profile.Name = "profile";
  Profile.Mode = ExecConfig::Tier::ProfileOnly;
  M.push_back(Profile);

  ExecConfig Jit;
  Jit.Name = "jit";
  Jit.DigestGroup = "engine";
  M.push_back(Jit);

  // Full server on the legacy engine, digest-grouped with "jit": the
  // engine swap must not move a single exported byte (profiles, tier
  // transitions, placement, metrics all derive from interpretation).
  ExecConfig JitLegacy = Jit;
  JitLegacy.Name = "jit-legacy";
  JitLegacy.LegacyInterp = true;
  M.push_back(JitLegacy);

  // Full JIT with whole-program proven-guard elision: placement differs
  // (elided guards), observables must not.  Every recorded elision is
  // re-proven via analysis::lintTranslations after the run.
  ExecConfig JitProven = Jit;
  JitProven.Name = "jit-proven";
  JitProven.DigestGroup.clear();
  JitProven.ProvenGuardElision = true;
  M.push_back(JitProven);

  ExecConfig Js;
  Js.Name = "jumpstart";
  Js.JumpStart = true;
  Js.DigestGroup = "jumpstart";
  M.push_back(Js);

  // Same cell with a host compile pool: the --threads axis.  Grouped
  // with "jumpstart" so the digests are byte-compared.
  ExecConfig JsThreads = Js;
  JsThreads.Name = "jumpstart-threads4";
  JsThreads.HostThreads = 4;
  M.push_back(JsThreads);
  return M;
}

std::vector<ExecConfig> jumpstart::testing::fullMatrix() {
  std::vector<ExecConfig> M = smokeMatrix();

  ExecConfig NoLayout;
  NoLayout.Name = "jit-nolayout";
  NoLayout.UseExtTsp = false;
  NoLayout.SplitHotCold = false;
  NoLayout.UseFunctionSort = false;
  M.push_back(NoLayout);

  ExecConfig NoSort;
  NoSort.Name = "jit-nosort";
  NoSort.UseFunctionSort = false;
  M.push_back(NoSort);

  ExecConfig NoSplit;
  NoSplit.Name = "jit-nosplit";
  NoSplit.SplitHotCold = false;
  M.push_back(NoSplit);

  ExecConfig JsNoReorder;
  JsNoReorder.Name = "jumpstart-noreorder";
  JsNoReorder.JumpStart = true;
  JsNoReorder.ReorderProperties = false;
  M.push_back(JsNoReorder);

  ExecConfig JsNoExtTsp;
  JsNoExtTsp.Name = "jumpstart-noextsp";
  JsNoExtTsp.JumpStart = true;
  JsNoExtTsp.UseExtTsp = false;
  M.push_back(JsNoExtTsp);

  // Jump-Start consumer with the whole-program analysis on, once with a
  // host compile pool: the analysis is deterministic, so the pair must
  // produce byte-identical digests (shared group), and both must match
  // every other cell observably.
  ExecConfig JsProven;
  JsProven.Name = "jumpstart-proven";
  JsProven.JumpStart = true;
  JsProven.ProvenGuardElision = true;
  JsProven.DigestGroup = "jumpstart-proven";
  M.push_back(JsProven);

  ExecConfig JsProvenThreads = JsProven;
  JsProvenThreads.Name = "jumpstart-proven-threads4";
  JsProvenThreads.HostThreads = 4;
  M.push_back(JsProvenThreads);
  return M;
}

std::vector<ExecConfig> jumpstart::testing::serveMatrix(uint32_t Threads) {
  std::vector<ExecConfig> M;
  ExecConfig Interp;
  Interp.Name = "interp";
  Interp.Mode = ExecConfig::Tier::InterpOnly;
  M.push_back(Interp);

  // Jump-Start-booted (mature before the window opens, like a production
  // consumer), served through the concurrent engine.  One client thread
  // vs N must agree on every observable AND on the determinism digest.
  ExecConfig Serve1;
  Serve1.Name = "jumpstart-serve1";
  Serve1.JumpStart = true;
  Serve1.ServeThreads = 1;
  Serve1.DigestGroup = "serve";
  M.push_back(Serve1);

  ExecConfig ServeN = Serve1;
  ServeN.Name = strFormat("jumpstart-serve%u", Threads);
  ServeN.ServeThreads = Threads;
  M.push_back(ServeN);
  return M;
}

ExecConfig jumpstart::testing::skewConfig() {
  ExecConfig C;
  C.Name = "jit-skew";
  C.IntAddSkew = 1;
  return C;
}

//===----------------------------------------------------------------------===//
// Helpers.
//===----------------------------------------------------------------------===//

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void fold(uint64_t &H, std::string_view S) {
  for (unsigned char C : S) {
    H ^= C;
    H *= kFnvPrime;
  }
}

void foldU64(uint64_t &H, uint64_t V) {
  for (int I = 0; I < 8; ++I) {
    H ^= (V >> (I * 8)) & 0xFF;
    H *= kFnvPrime;
  }
}

/// The deterministic request-argument stream: request R hits endpoint
/// R % E with one integer argument.  Identical for every configuration.
std::vector<runtime::Value> argsFor(uint32_t Request) {
  return {runtime::Value::integer(
      static_cast<int64_t>((Request * 2654435761ull) & 0xFFFFFull))};
}

/// The per-request step budget: big enough for any generated program,
/// small enough that an injected non-terminating loop aborts quickly.
constexpr uint64_t kStepBudget = 2'000'000;

std::string digestOf(const vm::Server &S, const obs::Observability &Obs) {
  std::string D = S.theJit().transDb().placementDigest();
  D += obs::metricsToJsonLines(Obs.Metrics);
  D += obs::traceToJsonLines(Obs.Trace);
  return D;
}

/// First differing line between two digests, for mismatch messages.
std::string firstDigestDiff(const std::string &A, const std::string &B) {
  size_t Pos = 0;
  size_t Line = 1;
  while (Pos < A.size() && Pos < B.size() && A[Pos] == B[Pos]) {
    if (A[Pos] == '\n')
      ++Line;
    ++Pos;
  }
  auto LineAt = [&](const std::string &S) {
    size_t Begin = S.rfind('\n', Pos);
    Begin = Begin == std::string::npos ? 0 : Begin + 1;
    size_t End = S.find('\n', Begin);
    return S.substr(Begin, End == std::string::npos ? End : End - Begin);
  };
  return strFormat("digest line %zu: \"%s\" vs \"%s\"", Line,
                   LineAt(A).c_str(), LineAt(B).c_str());
}

} // namespace

//===----------------------------------------------------------------------===//
// Compilation.
//===----------------------------------------------------------------------===//

Status DiffRunner::compileProgram(const std::string &Source,
                                  fleet::Workload &W) {
  const runtime::BuiltinTable &Builtins = runtime::BuiltinTable::standard();
  std::vector<std::string> Errors =
      frontend::compileUnit(W.Repo, Builtins, "diff.hack", Source);
  if (!Errors.empty())
    return support::errorStatus(StatusCode::InvalidArgument,
                                "frontend: %s", Errors.front().c_str());
  std::vector<std::string> VErrors =
      bc::verifyRepo(W.Repo, Builtins.size());
  if (!VErrors.empty())
    return support::errorStatus(StatusCode::FailedPrecondition,
                                "verifier: %s", VErrors.front().c_str());
  for (const bc::Function &F : W.Repo.funcs())
    if (!F.isMethod() && F.Name.rfind("endpoint", 0) == 0)
      W.Endpoints.push_back(F.Id);
  if (W.Endpoints.empty())
    return support::errorStatus(StatusCode::FailedPrecondition,
                                "program has no endpoint function");
  W.EndpointPartition.assign(W.Endpoints.size(), 0);
  W.NumPartitions = 1;
  W.Sources = {{"diff.hack", Source}};
  return Status::okStatus();
}

//===----------------------------------------------------------------------===//
// Single-configuration execution.
//===----------------------------------------------------------------------===//

RunTrace DiffRunner::runConfig(const fleet::Workload &W,
                               const ExecConfig &C) const {
  RunTrace T;
  const uint32_t NumRequests = Params.RequestsPerProgram;
  const size_t NumEndpoints = W.Endpoints.size();

  if (C.Mode == ExecConfig::Tier::InterpOnly) {
    // The semantic reference: no server, no JIT, no observation hooks.
    runtime::ClassTable Classes(W.Repo);
    runtime::Heap Heap;
    interp::InterpOptions Opts;
    Opts.StepBudget = kStepBudget;
    Opts.Engine = C.LegacyInterp ? interp::InterpEngine::Legacy
                                 : interp::InterpEngine::Fast;
    Opts.TestOnlyIntAddSkew = C.IntAddSkew;
    interp::Interpreter Interp(W.Repo, Classes, Heap,
                               runtime::BuiltinTable::standard(), Opts);
    std::string Output;
    Interp.setOutput(&Output);
    for (uint32_t Rq = 0; Rq < NumRequests; ++Rq) {
      interp::InterpResult R = Interp.call(
          W.Endpoints[Rq % NumEndpoints], argsFor(Rq));
      T.Requests.push_back({runtime::toString(R.Ret), Output, R.Faults,
                            R.Ok});
      Heap.reset();
      Output.clear();
    }
    return T;
  }

  obs::Observability Obs;
  std::unique_ptr<support::ThreadPool> Pool;
  if (C.HostThreads > 1)
    Pool = std::make_unique<support::ThreadPool>(C.HostThreads);

  vm::ServerConfig SC;
  SC.Cores = 4;
  SC.JitWorkerCores = 1;
  SC.WarmupEndpoints.clear(); // the schedule is the only traffic
  SC.Interp.StepBudget = kStepBudget;
  SC.Interp.Engine = C.LegacyInterp ? interp::InterpEngine::Legacy
                                    : interp::InterpEngine::Fast;
  SC.Interp.TestOnlyIntAddSkew = C.IntAddSkew;
  SC.Jit.ProfileRequestTarget =
      C.Mode == ExecConfig::Tier::FullJit
          ? std::max<uint32_t>(2, NumRequests / 3)
          : (1u << 30); // ProfileOnly: maturity never arrives
  SC.Jit.UseExtTsp = C.UseExtTsp;
  SC.Jit.SplitHotCold = C.SplitHotCold;
  SC.Jit.UseFunctionSort = C.UseFunctionSort;
  SC.ReorderProperties = C.ReorderProperties;
  SC.Jit.ProvenGuardElision = C.ProvenGuardElision;
  core::attachProvenFacts(SC, W.Repo);
  SC.Name = "diff";
  SC.CompilePool = Pool.get();
  if (C.ServeThreads > 0)
    SC.ServeWorkers = C.ServeThreads;

  // Concurrent-serving cells: open a window, let ServeThreads closed-loop
  // clients pull a shared ticket and serve, close the window.  Request Rq
  // lands at Results[Rq], so the recorded order is schedule order no
  // matter which thread ran it.
  auto ServeConcurrent = [&](vm::Server &S) {
    S.beginConcurrentServing();
    std::vector<RequestObs> Results(NumRequests);
    std::atomic<uint32_t> Next{0};
    auto Client = [&] {
      for (;;) {
        uint32_t Rq = Next.fetch_add(1, std::memory_order_relaxed);
        if (Rq >= NumRequests)
          break;
        vm::RequestResult Res =
            S.serve(W.Endpoints[Rq % NumEndpoints], argsFor(Rq), Rq);
        Results[Rq] = {Res.Obs.Ret, Res.Obs.Output, Res.Obs.Faults,
                       Res.Obs.Ok};
      }
    };
    std::vector<std::thread> Clients;
    for (uint32_t I = 1; I < C.ServeThreads; ++I)
      Clients.emplace_back(Client);
    Client();
    for (std::thread &Th : Clients)
      Th.join();
    S.endConcurrentServing();
    for (RequestObs &R : Results)
      T.Requests.push_back(std::move(R));
  };

  auto Serve = [&](vm::Server &S) {
    if (C.ServeThreads > 0) {
      ServeConcurrent(S);
      return;
    }
    for (uint32_t Rq = 0; Rq < NumRequests; ++Rq) {
      vm::RequestResult Res =
          S.executeRequest(W.Endpoints[Rq % NumEndpoints], argsFor(Rq));
      T.Requests.push_back({Res.Obs.Ret, Res.Obs.Output, Res.Obs.Faults,
                            Res.Obs.Ok});
      // Drain the JIT pipeline so tier transitions happen at the same
      // request index on every run.
      S.grantJitTime(16.0);
    }
    // Cross-validate every guard the lowering elided: an independent
    // analysis run must re-prove each recorded elision.
    if (C.ProvenGuardElision) {
      analysis::Linter L(W.Repo,
                         static_cast<uint32_t>(
                             runtime::BuiltinTable::standard().size()));
      for (const analysis::Diagnostic &D :
           L.lintTranslations(S.theJit().transDb()))
        if (D.Sev == analysis::Severity::Error &&
            T.ElisionLint.empty())
          T.ElisionLint = D.str(&W.Repo);
    }
  };

  if (!C.JumpStart) {
    SC.Obs = &Obs;
    vm::Server S(W.Repo, SC, /*Seed=*/7);
    S.startup();
    Serve(S);
    T.Digest = digestOf(S, Obs);
    return T;
  }

  // Jump-Start cell: grow a package on a seeder running the *same*
  // schedule, publish it, then boot a consumer through the real accept
  // path (deserialize, strict lint, fingerprint, precompile).
  vm::ServerConfig SeederSC = SC;
  SeederSC.Name = "seeder";
  SeederSC.CompilePool = nullptr;
  SeederSC.Jit.SeederInstrumentation = true;
  SeederSC.Jit.ProfileRequestTarget =
      std::max<uint32_t>(2, NumRequests / 3);
  vm::Server Seeder(W.Repo, SeederSC, /*Seed=*/11);
  Seeder.startup();
  for (uint32_t Rq = 0; Rq < NumRequests; ++Rq) {
    Seeder.executeRequest(W.Endpoints[Rq % NumEndpoints], argsFor(Rq));
    Seeder.grantJitTime(16.0);
  }
  profile::ProfilePackage Pkg = Seeder.buildSeederPackage(0, 0, 1);

  core::PackageManager Manager;
  alwaysAssert(Manager.publish(0, 0, Pkg.serialize()).ok(),
               "publishing the diff package");

  core::JumpStartOptions Opts;
  // Tiny generated programs cannot meet production coverage thresholds;
  // the strict lint and fingerprint checks stay at their defaults.
  Opts.Coverage.MinProfiledFuncs = 1;
  Opts.Coverage.MinTotalSamples = 1;
  Opts.Coverage.MinPackageBytes = 1;
  Opts.PropertyReordering = C.ReorderProperties;
  Opts.ProvenGuardElision = C.ProvenGuardElision;

  core::ConsumerParams CP;
  CP.Seed = 13;
  CP.Name = "diff";
  core::ConsumerOutcome Out =
      core::startConsumer(W, SC, Opts, Manager, CP, nullptr, &Obs);
  alwaysAssert(Out.Server != nullptr, "consumer failed to boot at all");
  T.BootedJumpStart = Out.UsedJumpStart;
  Serve(*Out.Server);
  T.Digest = digestOf(*Out.Server, Obs);
  return T;
}

//===----------------------------------------------------------------------===//
// Comparison and sweep.
//===----------------------------------------------------------------------===//

std::string DiffRunner::compareTraces(const RunTrace &A,
                                      const RunTrace &B) {
  if (A.Requests.size() != B.Requests.size())
    return strFormat("request count %zu vs %zu", A.Requests.size(),
                     B.Requests.size());
  for (size_t I = 0; I < A.Requests.size(); ++I) {
    const RequestObs &X = A.Requests[I];
    const RequestObs &Y = B.Requests[I];
    if (X.Ret != Y.Ret)
      return strFormat("request %zu: return \"%s\" vs \"%s\"", I,
                       X.Ret.c_str(), Y.Ret.c_str());
    if (X.Output != Y.Output)
      return strFormat("request %zu: output \"%s\" vs \"%s\"", I,
                       X.Output.c_str(), Y.Output.c_str());
    if (X.Faults != Y.Faults)
      return strFormat("request %zu: %llu vs %llu faults", I,
                       static_cast<unsigned long long>(X.Faults),
                       static_cast<unsigned long long>(Y.Faults));
    if (X.Ok != Y.Ok)
      return strFormat("request %zu: ok=%d vs ok=%d", I, X.Ok, Y.Ok);
  }
  return "";
}

DiffRunner::DiffRunner(DiffParams P) : Params(std::move(P)) {
  if (Params.Matrix.empty())
    Params.Matrix = smokeMatrix();
  // A single-config matrix is allowed: ablation sweeps run one arm at a
  // time and compare the two sweeps' observables digests (ObsDigest)
  // instead of doing pairwise in-run comparison.
  alwaysAssert(!Params.Matrix.empty(),
               "differential testing needs at least one configuration");
}

void DiffRunner::recordMismatch(const GenProgram &Prog,
                                uint64_t ProgramSeed, const ExecConfig &A,
                                const ExecConfig &B, std::string What,
                                bool DigestOnly, DiffStats &Stats) {
  Mismatch Mm;
  Mm.ProgramSeed = ProgramSeed;
  Mm.ConfigA = A.Name;
  Mm.ConfigB = B.Name;
  Mm.What = std::move(What);
  Mm.Source = Prog.render();

  // "Still fails" for the shrinker: the candidate compiles and the same
  // config pair still diverges (semantically, or by digest for
  // determinism mismatches).
  auto Differs = [&](const GenProgram &Cand) {
    fleet::Workload W;
    if (!compileProgram(Cand.render(), W).ok())
      return false;
    RunTrace TA = runConfig(W, A);
    RunTrace TB = runConfig(W, B);
    if (DigestOnly)
      return TA.Digest != TB.Digest;
    if (!compareTraces(TA, TB).empty())
      return true;
    return B.JumpStart && !TB.BootedJumpStart;
  };

  GenProgram Min = Prog;
  if (Params.Shrink && Differs(Prog))
    Min = shrinkProgram(std::move(Min), Differs);
  Mm.Shrunk = Min.render();
  Mm.ShrunkLines = Min.sourceLines();

  if (!Params.ReproDir.empty()) {
    std::error_code Ec;
    std::filesystem::create_directories(Params.ReproDir, Ec);
    std::string Base =
        strFormat("%s/p%llu-%s-vs-%s", Params.ReproDir.c_str(),
                  static_cast<unsigned long long>(ProgramSeed),
                  Mm.ConfigA.c_str(), Mm.ConfigB.c_str());
    std::ofstream Hack(Base + ".hack");
    Hack << Mm.Shrunk;
    std::ofstream Txt(Base + ".txt");
    Txt << strFormat("program seed: %llu\nconfigs: %s vs %s\n"
                     "mismatch: %s\noriginal lines: %zu\n"
                     "shrunk lines: %zu\n\n--- original ---\n%s",
                     static_cast<unsigned long long>(ProgramSeed),
                     Mm.ConfigA.c_str(), Mm.ConfigB.c_str(),
                     Mm.What.c_str(), Prog.sourceLines(), Mm.ShrunkLines,
                     Mm.Source.c_str());
    Mm.ArtifactPath = Base + ".hack";
  }
  Stats.Mismatches.push_back(std::move(Mm));
}

void DiffRunner::checkProgram(const GenProgram &Prog, uint64_t ProgramSeed,
                              DiffStats &Stats) {
  ++Stats.Programs;
  std::string Source = Prog.render();
  if (Stats.SweepDigest == 0)
    Stats.SweepDigest = kFnvOffset;
  if (Stats.ObsDigest == 0)
    Stats.ObsDigest = kFnvOffset;
  fold(Stats.SweepDigest, Source);
  fold(Stats.ObsDigest, Source);

  fleet::Workload W;
  Status Compiled = compileProgram(Source, W);
  if (!Compiled.ok()) {
    // A generator bug is itself a reportable failure of the harness.
    Mismatch Mm;
    Mm.ProgramSeed = ProgramSeed;
    Mm.ConfigA = "frontend";
    Mm.ConfigB = "generator";
    Mm.What = strFormat("generated program does not compile: %s",
                        Compiled.message().c_str());
    Mm.Source = Source;
    Mm.Shrunk = Source;
    Mm.ShrunkLines = Prog.sourceLines();
    Stats.Mismatches.push_back(std::move(Mm));
    return;
  }

  std::vector<RunTrace> Traces;
  Traces.reserve(Params.Matrix.size());
  for (const ExecConfig &C : Params.Matrix) {
    Traces.push_back(runConfig(W, C));
    ++Stats.Runs;
    const RunTrace &T = Traces.back();
    if (T.BootedJumpStart)
      ++Stats.JumpStartBoots;
    fold(Stats.SweepDigest, C.Name);
    for (const RequestObs &R : T.Requests) {
      fold(Stats.SweepDigest, R.Ret);
      fold(Stats.SweepDigest, R.Output);
      foldU64(Stats.SweepDigest, R.Faults);
      foldU64(Stats.SweepDigest, R.Ok ? 1 : 0);
      // The observables-only digest deliberately skips config names and
      // placement/metrics digests: the elision ablation compares it
      // across matrices whose cells differ in those.
      fold(Stats.ObsDigest, R.Ret);
      fold(Stats.ObsDigest, R.Output);
      foldU64(Stats.ObsDigest, R.Faults);
      foldU64(Stats.ObsDigest, R.Ok ? 1 : 0);
    }
    fold(Stats.SweepDigest, T.Digest);
  }

  // Elision re-proof failures surface as mismatches against "analysis":
  // the JIT elided a guard the whole-program analysis cannot defend.
  for (size_t I = 0; I < Params.Matrix.size(); ++I)
    if (!Traces[I].ElisionLint.empty())
      recordMismatch(Prog, ProgramSeed, Params.Matrix[I], Params.Matrix[I],
                     strFormat("elision re-proof failed: %s",
                               Traces[I].ElisionLint.c_str()),
                     /*DigestOnly=*/false, Stats);

  // (a) semantic equality against the reference config (matrix cell 0).
  const ExecConfig &Ref = Params.Matrix.front();
  for (size_t I = 1; I < Params.Matrix.size(); ++I) {
    const ExecConfig &C = Params.Matrix[I];
    std::string What = compareTraces(Traces.front(), Traces[I]);
    if (What.empty() && C.JumpStart && !Traces[I].BootedJumpStart)
      What = "consumer declined the seeder-published package (fallback "
             "boot)";
    if (!What.empty())
      recordMismatch(Prog, ProgramSeed, Ref, C, std::move(What),
                     /*DigestOnly=*/false, Stats);
  }

  // (b) determinism digests within each group (the --threads promise).
  std::map<std::string, size_t> GroupFirst;
  for (size_t I = 0; I < Params.Matrix.size(); ++I) {
    const ExecConfig &C = Params.Matrix[I];
    if (C.DigestGroup.empty())
      continue;
    auto [It, Inserted] = GroupFirst.try_emplace(C.DigestGroup, I);
    if (Inserted)
      continue;
    ++Stats.DigestComparisons;
    size_t First = It->second;
    if (Traces[First].Digest != Traces[I].Digest)
      recordMismatch(
          Prog, ProgramSeed, Params.Matrix[First], C,
          strFormat("determinism digest differs: %s",
                    firstDigestDiff(Traces[First].Digest,
                                    Traces[I].Digest)
                        .c_str()),
          /*DigestOnly=*/true, Stats);
  }
}

DiffStats DiffRunner::run() {
  DiffStats Stats;
  Stats.SweepDigest = kFnvOffset;
  for (uint32_t I = 0; I < Params.NumPrograms; ++I) {
    uint64_t ProgramSeed = Params.Seed * 1'000'003ull + I;
    GenParams G = Params.Gen;
    G.Seed = ProgramSeed;
    GenProgram Prog = generateProgram(G);
    checkProgram(Prog, ProgramSeed, Stats);
  }
  return Stats;
}
