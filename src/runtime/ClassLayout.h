//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime class layouts and Jump-Start's object-property reordering.
///
/// Paper section V-C: the declared order of object properties is observable
/// in the source language (objects can be iterated in declared order), and
/// subtyping requires inherited properties to keep their slots.  The
/// optimization therefore (a) reorders properties only *within each layer*
/// of the class hierarchy -- a parent's physical layout is always a prefix
/// of its children's -- and (b) maintains a per-class array mapping each
/// property's declared index to its physical slot, consulted by the (rare)
/// operations that need declared order.
///
/// The hotness metric is the per-property access count collected by the
/// seeders' tier-1 instrumentation, keyed by the string "Class::prop".
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_RUNTIME_CLASSLAYOUT_H
#define JUMPSTART_RUNTIME_CLASSLAYOUT_H

#include "bytecode/Repo.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace jumpstart::runtime {

/// The flattened runtime view of one class: physical property slots,
/// declared-to-physical mapping, and the resolved method table.
class ClassLayout {
public:
  bc::ClassId id() const { return Id; }
  const ClassLayout *parent() const { return Parent; }

  uint32_t numSlots() const {
    return static_cast<uint32_t>(PhysProps.size());
  }

  /// Property name stored in physical slot \p Slot.
  bc::StringId propAtSlot(uint32_t Slot) const { return PhysProps[Slot]; }

  /// Physical slot of property \p Name, or -1 when the class has no such
  /// property.
  int64_t findSlot(bc::StringId Name) const {
    auto It = NameToSlot.find(Name.raw());
    if (It == NameToSlot.end())
      return -1;
    return It->second;
  }

  /// The declared-index -> physical-slot mapping (paper section V-C).
  /// Declared indices cover the full inheritance chain: the parent's
  /// declared properties first, then this class's own.
  const std::vector<uint32_t> &declToPhys() const { return DeclToPhys; }

  /// Resolved method named \p Name (inheritance already flattened);
  /// \returns an invalid FuncId when absent.
  bc::FuncId findMethod(bc::StringId Name) const {
    auto It = MethodTable.find(Name.raw());
    if (It == MethodTable.end())
      return bc::FuncId();
    return It->second;
  }

  size_t numMethods() const { return MethodTable.size(); }

private:
  friend class ClassTable;
  bc::ClassId Id;
  const ClassLayout *Parent = nullptr;
  std::vector<bc::StringId> PhysProps;
  std::vector<uint32_t> DeclToPhys;
  std::unordered_map<uint32_t, uint32_t> NameToSlot;
  std::unordered_map<uint32_t, bc::FuncId> MethodTable;
};

/// How a class's own properties are ordered into physical slots.
enum class PropOrderMode {
  /// Declared order (no profile).
  Declared,
  /// Decreasing access count (the paper's section V-C optimization).
  Hotness,
  /// Greedy affinity chaining: start from the hottest property, then
  /// repeatedly append the unplaced property with the strongest
  /// co-access affinity to the previously placed one (the section V-C
  /// future-work extension; cf. Chilimbi et al., PLDI 1999).
  Affinity,
};

/// Builds and caches ClassLayouts for one server.
///
/// When property reordering is enabled and access counts are available
/// (loaded from a Jump-Start profile package), each class's own properties
/// are sorted by decreasing access count (or affinity-chained); otherwise
/// declared order is used.
class ClassTable {
public:
  explicit ClassTable(const bc::Repo &R) : R(R) {}

  /// Enables hotness-based property reordering driven by \p Counts, a
  /// map from "Class::prop" to access count.  The map must outlive the
  /// table.  Layouts already built are unaffected (class layout is
  /// decided when a class is first loaded, as in the paper).
  void enablePropReordering(
      const std::unordered_map<std::string, uint64_t> *Counts) {
    PropCounts = Counts;
    Mode = PropOrderMode::Hotness;
  }

  /// Enables affinity-based ordering.  \p Affinity maps
  /// "Class::propA::propB" (lexicographic property order) to co-access
  /// counts; \p Counts is still used to pick chain seeds and break ties.
  void enableAffinityReordering(
      const std::unordered_map<std::string, uint64_t> *Counts,
      const std::unordered_map<std::string, uint64_t> *Affinity) {
    PropCounts = Counts;
    PropAffinity = Affinity;
    Mode = PropOrderMode::Affinity;
  }

  bool reorderingEnabled() const { return Mode != PropOrderMode::Declared; }
  PropOrderMode orderMode() const { return Mode; }

  /// \returns the layout of \p Id, building it (and its ancestors) on
  /// first use.
  const ClassLayout &layout(bc::ClassId Id);

  /// \returns true if \p Id's layout has already been built (i.e. the
  /// class has been "loaded" on this server).
  bool isLoaded(bc::ClassId Id) const;

  size_t numLoaded() const { return NumBuilt; }

private:
  const ClassLayout &build(bc::ClassId Id);
  uint64_t accessCount(const bc::Class &K, bc::StringId Prop) const;
  uint64_t affinityCount(const bc::Class &K, bc::StringId A,
                         bc::StringId B) const;
  std::vector<uint32_t> orderOwnProps(const bc::Class &K) const;

  const bc::Repo &R;
  PropOrderMode Mode = PropOrderMode::Declared;
  const std::unordered_map<std::string, uint64_t> *PropCounts = nullptr;
  const std::unordered_map<std::string, uint64_t> *PropAffinity = nullptr;
  std::vector<std::unique_ptr<ClassLayout>> Layouts;
  size_t NumBuilt = 0;
};

} // namespace jumpstart::runtime

#endif // JUMPSTART_RUNTIME_CLASSLAYOUT_H
