//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request-local heap.
///
/// Mirrors HHVM's request-local memory model: all values allocated while
/// serving a request are freed wholesale when the request ends.  The heap
/// also maintains a *simulated address space* (bump allocation with
/// realistic object sizes) so the micro-architecture simulator can observe
/// the data-locality effects of Jump-Start's object-layout optimization.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_RUNTIME_HEAP_H
#define JUMPSTART_RUNTIME_HEAP_H

#include "runtime/Value.h"

#include <deque>
#include <vector>
#include <memory>
#include <string_view>

namespace jumpstart::runtime {

/// Bump allocator for interpreter frames (locals plus operand stack).
///
/// The legacy interpreter pays two std::vector allocations per call; the
/// fast engine instead carves each frame out of this arena and rewinds it
/// on return.  Frames are strictly LIFO (a callee's frame dies before its
/// caller's), so mark/rewind is sufficient.  Chunks are retained across
/// requests, so steady-state frame setup performs no host allocation.
class FrameArena {
public:
  struct Mark {
    uint32_t Chunk = 0;
    uint32_t Used = 0;
  };

  Mark mark() const { return {CurChunk, Used}; }

  /// Allocates \p N contiguous Value slots.  Contents are unspecified
  /// (recycled frames see stale values); callers initialize what they
  /// read.  The pointer stays valid until the enclosing mark is rewound.
  Value *alloc(uint32_t N);

  /// Frees everything allocated after \p M was taken.
  void rewind(Mark M) {
    CurChunk = M.Chunk;
    Used = M.Used;
  }

  /// Rewinds completely, keeping chunk capacity for the next request.
  void clear() {
    CurChunk = 0;
    Used = 0;
  }

  size_t numChunks() const { return Chunks.size(); }

private:
  struct Chunk {
    std::unique_ptr<Value[]> Slots;
    uint32_t Cap = 0;
  };

  static constexpr uint32_t kChunkSlots = 4096;

  std::vector<Chunk> Chunks;
  uint32_t CurChunk = 0;
  uint32_t Used = 0;
};

/// Arena allocator for one request's values.
class Heap {
public:
  /// \param BaseAddr start of this heap's simulated address range.
  explicit Heap(uint64_t BaseAddr = 0x100000000ull) : Base(BaseAddr) {
    NextAddr = Base;
  }

  VmString *allocString(std::string_view S);
  VmVec *allocVec();
  VmDict *allocDict();

  /// Allocates an object with \p NumSlots null-initialized property slots.
  VmObject *allocObject(const ClassLayout *Layout, uint32_t NumSlots);

  /// Returns the interned VmString for repo string \p StringId, creating
  /// it on first use.  Interned strings persist across reset() (they are
  /// immutable and compared by content, never by identity or address), so
  /// a hot Op::Str costs no host allocation in steady state.  The
  /// *simulated* address space still evolves exactly as if the string
  /// were allocated afresh — later vec/dict/object addresses feed the
  /// D-cache simulation and must not shift — so a hit still bumps.
  VmString *internString(uint32_t StringId, std::string_view S);

  /// Frees everything allocated since construction / the last reset and
  /// rewinds the simulated address space.  Interned strings and frame
  /// arena capacity are retained.
  void reset();

  /// Total simulated bytes currently allocated.
  uint64_t bytesAllocated() const { return NextAddr - Base; }

  size_t numObjects() const { return Objects.size(); }

  /// The frame arena for interpreter locals/stacks (see FrameArena).
  FrameArena &frameArena() { return Frames; }

  /// Deterministic model-level count of host allocations performed on
  /// behalf of VM values: one per alloc*() call and per intern miss.
  /// Callers that allocate host memory for VM state outside the heap
  /// (e.g. the legacy interpreter's per-call frame vectors) charge it
  /// here via noteHostAllocs, so allocs/request is comparable across
  /// engines.  Cumulative; never reset.  Not exported to metrics.
  uint64_t hostAllocs() const { return HostAllocs; }
  void noteHostAllocs(uint64_t N) { HostAllocs += N; }

private:
  uint64_t bump(uint64_t Size);

  uint64_t Base;
  uint64_t NextAddr;
  uint64_t HostAllocs = 0;
  std::deque<VmString> Strings;
  std::deque<VmVec> Vecs;
  std::deque<VmDict> Dicts;
  std::deque<VmObject> Objects;
  std::deque<VmString> Interned;
  // Dense: repo string ids are small and contiguous, so the intern
  // table is a flat vector -- one bounds check + load per Op::Str.
  std::vector<VmString *> InternById;
  FrameArena Frames;
};

} // namespace jumpstart::runtime

#endif // JUMPSTART_RUNTIME_HEAP_H
