//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request-local heap.
///
/// Mirrors HHVM's request-local memory model: all values allocated while
/// serving a request are freed wholesale when the request ends.  The heap
/// also maintains a *simulated address space* (bump allocation with
/// realistic object sizes) so the micro-architecture simulator can observe
/// the data-locality effects of Jump-Start's object-layout optimization.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_RUNTIME_HEAP_H
#define JUMPSTART_RUNTIME_HEAP_H

#include "runtime/Value.h"

#include <deque>
#include <string_view>

namespace jumpstart::runtime {

/// Arena allocator for one request's values.
class Heap {
public:
  /// \param BaseAddr start of this heap's simulated address range.
  explicit Heap(uint64_t BaseAddr = 0x100000000ull) : Base(BaseAddr) {
    NextAddr = Base;
  }

  VmString *allocString(std::string_view S);
  VmVec *allocVec();
  VmDict *allocDict();

  /// Allocates an object with \p NumSlots null-initialized property slots.
  VmObject *allocObject(const ClassLayout *Layout, uint32_t NumSlots);

  /// Frees everything allocated since construction / the last reset and
  /// rewinds the simulated address space.
  void reset();

  /// Total simulated bytes currently allocated.
  uint64_t bytesAllocated() const { return NextAddr - Base; }

  size_t numObjects() const { return Objects.size(); }

private:
  uint64_t bump(uint64_t Size);

  uint64_t Base;
  uint64_t NextAddr;
  std::deque<VmString> Strings;
  std::deque<VmVec> Vecs;
  std::deque<VmDict> Dicts;
  std::deque<VmObject> Objects;
};

} // namespace jumpstart::runtime

#endif // JUMPSTART_RUNTIME_HEAP_H
