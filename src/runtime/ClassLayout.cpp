//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "runtime/ClassLayout.h"

#include "support/Assert.h"

#include <algorithm>
#include <numeric>

using namespace jumpstart;
using namespace jumpstart::runtime;

const ClassLayout &ClassTable::layout(bc::ClassId Id) {
  if (Layouts.size() < R.numClasses())
    Layouts.resize(R.numClasses());
  assert(Id.raw() < Layouts.size() && "invalid ClassId");
  if (Layouts[Id.raw()])
    return *Layouts[Id.raw()];
  return build(Id);
}

bool ClassTable::isLoaded(bc::ClassId Id) const {
  return Id.raw() < Layouts.size() && Layouts[Id.raw()] != nullptr;
}

uint64_t ClassTable::accessCount(const bc::Class &K, bc::StringId Prop) const {
  if (!PropCounts)
    return 0;
  // The profile keys properties by "Class::prop" exactly as the paper's
  // seeder-side hash table does.
  std::string Key = K.Name + "::" + R.str(Prop);
  auto It = PropCounts->find(Key);
  return It == PropCounts->end() ? 0 : It->second;
}

uint64_t ClassTable::affinityCount(const bc::Class &K, bc::StringId A,
                                   bc::StringId B) const {
  if (!PropAffinity)
    return 0;
  const std::string &SA = R.str(A);
  const std::string &SB = R.str(B);
  std::string Key =
      K.Name + "::" + (SA < SB ? SA + "::" + SB : SB + "::" + SA);
  auto It = PropAffinity->find(Key);
  return It == PropAffinity->end() ? 0 : It->second;
}

std::vector<uint32_t> ClassTable::orderOwnProps(const bc::Class &K) const {
  std::vector<uint32_t> Order(K.DeclProps.size());
  std::iota(Order.begin(), Order.end(), 0u);
  if (Mode == PropOrderMode::Declared || K.DeclProps.empty())
    return Order;

  std::vector<uint64_t> Counts(K.DeclProps.size());
  for (size_t I = 0; I < K.DeclProps.size(); ++I)
    Counts[I] = accessCount(K, K.DeclProps[I]);

  if (Mode == PropOrderMode::Hotness) {
    std::stable_sort(Order.begin(), Order.end(), [&](uint32_t A, uint32_t B) {
      return Counts[A] > Counts[B];
    });
    return Order;
  }

  // Affinity chaining: seed with the hottest property, then repeatedly
  // append the unplaced property with the strongest co-access affinity to
  // the previously placed one; hotness breaks ties and restarts dead
  // chains.  Stable by declared index throughout, for determinism.
  std::vector<bool> Placed(K.DeclProps.size(), false);
  std::vector<uint32_t> Chain;
  Chain.reserve(K.DeclProps.size());
  auto HottestUnplaced = [&]() {
    uint32_t Best = ~0u;
    for (uint32_t I = 0; I < K.DeclProps.size(); ++I) {
      if (Placed[I])
        continue;
      if (Best == ~0u || Counts[I] > Counts[Best])
        Best = I;
    }
    return Best;
  };
  uint32_t Current = HottestUnplaced();
  while (Current != ~0u) {
    Placed[Current] = true;
    Chain.push_back(Current);
    uint32_t Next = ~0u;
    uint64_t BestAffinity = 0;
    for (uint32_t I = 0; I < K.DeclProps.size(); ++I) {
      if (Placed[I])
        continue;
      uint64_t Aff = affinityCount(K, K.DeclProps[Current], K.DeclProps[I]);
      if (Aff > BestAffinity) {
        BestAffinity = Aff;
        Next = I;
      }
    }
    Current = Next != ~0u ? Next : HottestUnplaced();
  }
  return Chain;
}

const ClassLayout &ClassTable::build(bc::ClassId Id) {
  const bc::Class &K = R.cls(Id);

  // Ensure the parent chain is built first; layouts embed parent layouts
  // as slot prefixes.
  const ClassLayout *ParentLayout = nullptr;
  if (K.Parent.valid())
    ParentLayout = &layout(K.Parent);

  auto L = std::make_unique<ClassLayout>();
  L->Id = Id;
  L->Parent = ParentLayout;

  // Inherited properties keep their physical slots, and their declared
  // indices come first in the flattened declared order.
  if (ParentLayout) {
    L->PhysProps = ParentLayout->PhysProps;
    L->NameToSlot = ParentLayout->NameToSlot;
    L->DeclToPhys = ParentLayout->DeclToPhys;
    L->MethodTable = ParentLayout->MethodTable;
  }

  // Decide the physical order of this class's own properties.  Without a
  // profile it is the declared order; with one, decreasing access count
  // or affinity chaining (stable, so ties keep declared order --
  // determinism matters for reproducible experiments).
  std::vector<uint32_t> Order = orderOwnProps(K);

  // Append own properties in the chosen physical order, recording the
  // declared-index -> physical-slot mapping.
  uint32_t OwnDeclBase = static_cast<uint32_t>(L->DeclToPhys.size());
  L->DeclToPhys.resize(OwnDeclBase + K.DeclProps.size());
  for (uint32_t DeclIndex : Order) {
    bc::StringId Prop = K.DeclProps[DeclIndex];
    uint32_t Slot = static_cast<uint32_t>(L->PhysProps.size());
    // Shadowing a parent property is not supported by the frontend; assert
    // the invariant here so layout bugs surface immediately.
    alwaysAssert(L->NameToSlot.find(Prop.raw()) == L->NameToSlot.end(),
                 "property redeclared in subclass");
    L->PhysProps.push_back(Prop);
    L->NameToSlot.emplace(Prop.raw(), Slot);
    L->DeclToPhys[OwnDeclBase + DeclIndex] = Slot;
  }

  // Overlay this class's own methods on the inherited method table.
  for (const auto &[NameRaw, Func] : K.Methods)
    L->MethodTable[NameRaw] = Func;

  ++NumBuilt;
  Layouts[Id.raw()] = std::move(L);
  return *Layouts[Id.raw()];
}
