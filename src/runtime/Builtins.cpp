//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "runtime/Builtins.h"

#include "runtime/ValueOps.h"
#include "support/Assert.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cmath>

using namespace jumpstart;
using namespace jumpstart::runtime;

uint32_t BuiltinTable::add(std::string_view Name, uint32_t Arity,
                           NativeFn Fn) {
  alwaysAssert(Index.find(std::string(Name)) == Index.end(),
               "builtin registered twice");
  uint32_t Id = static_cast<uint32_t>(Builtins.size());
  Builtins.push_back(Builtin{std::string(Name), Arity, Fn});
  Index.emplace(std::string(Name), Id);
  return Id;
}

uint32_t BuiltinTable::find(std::string_view Name) const {
  auto It = Index.find(std::string(Name));
  if (It == Index.end())
    return kNotFound;
  return It->second;
}

const Builtin &BuiltinTable::builtin(uint32_t Id) const {
  assert(Id < Builtins.size() && "invalid builtin id");
  return Builtins[Id];
}

namespace {

Value nativePrint(NativeContext &Ctx, const Value *Args, uint32_t N) {
  assert(N == 1);
  (void)N;
  if (Ctx.Output)
    *Ctx.Output += toString(Args[0]);
  return Value::null();
}

Value nativeStrlen(NativeContext &, const Value *Args, uint32_t) {
  if (!Args[0].isStr())
    return Value::integer(static_cast<int64_t>(toString(Args[0]).size()));
  return Value::integer(static_cast<int64_t>(Args[0].S->Data.size()));
}

Value nativeSubstr(NativeContext &Ctx, const Value *Args, uint32_t) {
  std::string S = toString(Args[0]);
  int64_t Start = toInt(Args[1]);
  int64_t Len = toInt(Args[2]);
  if (Start < 0)
    Start = std::max<int64_t>(0, static_cast<int64_t>(S.size()) + Start);
  if (Start >= static_cast<int64_t>(S.size()) || Len <= 0)
    return Value::str(Ctx.H.allocString(""));
  size_t Count = std::min<size_t>(static_cast<size_t>(Len),
                                  S.size() - static_cast<size_t>(Start));
  return Value::str(
      Ctx.H.allocString(S.substr(static_cast<size_t>(Start), Count)));
}

Value nativeToStr(NativeContext &Ctx, const Value *Args, uint32_t) {
  return Value::str(Ctx.H.allocString(toString(Args[0])));
}

Value nativeAbs(NativeContext &, const Value *Args, uint32_t) {
  if (Args[0].isInt())
    return Value::integer(std::llabs(Args[0].I));
  return Value::dbl(std::fabs(toDouble(Args[0])));
}

Value nativeMin(NativeContext &, const Value *Args, uint32_t) {
  return toBool(compare(CmpOp::Le, Args[0], Args[1])) ? Args[0] : Args[1];
}

Value nativeMax(NativeContext &, const Value *Args, uint32_t) {
  return toBool(compare(CmpOp::Ge, Args[0], Args[1])) ? Args[0] : Args[1];
}

Value nativeSqrt(NativeContext &, const Value *Args, uint32_t) {
  double D = toDouble(Args[0]);
  if (D < 0)
    return Value::null();
  return Value::dbl(std::sqrt(D));
}

Value nativeFloor(NativeContext &, const Value *Args, uint32_t) {
  return Value::integer(
      static_cast<int64_t>(std::floor(toDouble(Args[0]))));
}

Value nativeHash(NativeContext &, const Value *Args, uint32_t) {
  uint64_t H;
  if (Args[0].isStr())
    H = hashString(Args[0].S->Data);
  else
    H = hashCombine(0x1234567, static_cast<uint64_t>(toInt(Args[0])));
  // Keep the result a non-negative int so it can index arrays.
  return Value::integer(static_cast<int64_t>(H >> 1));
}

Value nativeKeys(NativeContext &Ctx, const Value *Args, uint32_t) {
  VmVec *Result = Ctx.H.allocVec();
  if (Args[0].isDict()) {
    for (const auto &[K, V] : Args[0].Dt->Entries) {
      (void)V;
      if (K.IsStr)
        Result->Elems.push_back(Value::str(Ctx.H.allocString(K.StrKey)));
      else
        Result->Elems.push_back(Value::integer(K.IntKey));
    }
  }
  return Value::vec(Result);
}

Value nativeStrRepeat(NativeContext &Ctx, const Value *Args, uint32_t) {
  std::string S = toString(Args[0]);
  int64_t N = std::clamp<int64_t>(toInt(Args[1]), 0, 4096);
  std::string Result;
  Result.reserve(S.size() * static_cast<size_t>(N));
  for (int64_t I = 0; I < N; ++I)
    Result += S;
  return Value::str(Ctx.H.allocString(Result));
}

Value nativeOrd(NativeContext &, const Value *Args, uint32_t) {
  if (!Args[0].isStr() || Args[0].S->Data.empty())
    return Value::integer(0);
  return Value::integer(static_cast<unsigned char>(Args[0].S->Data[0]));
}

} // namespace

const BuiltinTable &BuiltinTable::standard() {
  static const BuiltinTable Table = [] {
    BuiltinTable T;
    T.add("print", 1, nativePrint);
    T.add("strlen", 1, nativeStrlen);
    T.add("substr", 3, nativeSubstr);
    T.add("to_str", 1, nativeToStr);
    T.add("abs", 1, nativeAbs);
    T.add("min", 2, nativeMin);
    T.add("max", 2, nativeMax);
    T.add("sqrt", 1, nativeSqrt);
    T.add("floor", 1, nativeFloor);
    T.add("hash", 1, nativeHash);
    T.add("keys", 1, nativeKeys);
    T.add("str_repeat", 2, nativeStrRepeat);
    T.add("ord", 1, nativeOrd);
    return T;
  }();
  return Table;
}
