//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"

#include <algorithm>

using namespace jumpstart;
using namespace jumpstart::runtime;

Value *FrameArena::alloc(uint32_t N) {
  while (true) {
    if (CurChunk < Chunks.size()) {
      Chunk &C = Chunks[CurChunk];
      if (C.Cap - Used >= N) {
        Value *P = C.Slots.get() + Used;
        Used += N;
        return P;
      }
      // The tail of this chunk is too small; it stays unused until the
      // enclosing mark is rewound.
      ++CurChunk;
      Used = 0;
      continue;
    }
    uint32_t Cap = std::max(kChunkSlots, N);
    Chunks.push_back(Chunk{std::make_unique<Value[]>(Cap), Cap});
  }
}

uint64_t Heap::bump(uint64_t Size) {
  // 16-byte alignment, like a real allocator's size classes.
  uint64_t Addr = NextAddr;
  NextAddr += (Size + 15) & ~15ull;
  return Addr;
}

VmString *Heap::allocString(std::string_view S) {
  ++HostAllocs;
  Strings.emplace_back();
  VmString &Str = Strings.back();
  Str.Data = std::string(S);
  Str.Addr = bump(24 + S.size());
  return &Str;
}

VmVec *Heap::allocVec() {
  ++HostAllocs;
  Vecs.emplace_back();
  VmVec &V = Vecs.back();
  V.Addr = bump(48);
  return &V;
}

VmDict *Heap::allocDict() {
  ++HostAllocs;
  Dicts.emplace_back();
  VmDict &D = Dicts.back();
  D.Addr = bump(64);
  return &D;
}

VmObject *Heap::allocObject(const ClassLayout *Layout, uint32_t NumSlots) {
  ++HostAllocs;
  Objects.emplace_back();
  VmObject &O = Objects.back();
  O.Layout = Layout;
  O.Slots.assign(NumSlots, Value::null());
  O.Addr = bump(16 + 16ull * NumSlots);
  return &O;
}

VmString *Heap::internString(uint32_t StringId, std::string_view S) {
  // Bump first, hit or miss: the simulated layout must match a heap that
  // allocates this string afresh.
  uint64_t Addr = bump(24 + S.size());
  if (StringId < InternById.size()) {
    if (VmString *Hit = InternById[StringId])
      return Hit;
  } else {
    InternById.resize(StringId + 1, nullptr);
  }
  ++HostAllocs;
  Interned.emplace_back();
  VmString &Str = Interned.back();
  Str.Data = std::string(S);
  Str.Addr = Addr;
  InternById[StringId] = &Str;
  return &Str;
}

void Heap::reset() {
  Strings.clear();
  Vecs.clear();
  Dicts.clear();
  Objects.clear();
  Frames.clear();
  NextAddr = Base;
}
