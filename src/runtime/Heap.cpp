//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"

using namespace jumpstart;
using namespace jumpstart::runtime;

uint64_t Heap::bump(uint64_t Size) {
  // 16-byte alignment, like a real allocator's size classes.
  uint64_t Addr = NextAddr;
  NextAddr += (Size + 15) & ~15ull;
  return Addr;
}

VmString *Heap::allocString(std::string_view S) {
  Strings.emplace_back();
  VmString &Str = Strings.back();
  Str.Data = std::string(S);
  Str.Addr = bump(24 + S.size());
  return &Str;
}

VmVec *Heap::allocVec() {
  Vecs.emplace_back();
  VmVec &V = Vecs.back();
  V.Addr = bump(48);
  return &V;
}

VmDict *Heap::allocDict() {
  Dicts.emplace_back();
  VmDict &D = Dicts.back();
  D.Addr = bump(64);
  return &D;
}

VmObject *Heap::allocObject(const ClassLayout *Layout, uint32_t NumSlots) {
  Objects.emplace_back();
  VmObject &O = Objects.back();
  O.Layout = Layout;
  O.Slots.assign(NumSlots, Value::null());
  O.Addr = bump(16 + 16ull * NumSlots);
  return &O;
}

void Heap::reset() {
  Strings.clear();
  Vecs.clear();
  Dicts.clear();
  Objects.clear();
  NextAddr = Base;
}
