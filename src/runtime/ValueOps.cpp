//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "runtime/ValueOps.h"

#include "support/Assert.h"
#include "support/Hashing.h"
#include "support/StringUtil.h"

#include <cmath>

using namespace jumpstart;
using namespace jumpstart::runtime;

const char *jumpstart::runtime::typeName(Type T) {
  switch (T) {
  case Type::Null:
    return "null";
  case Type::Bool:
    return "bool";
  case Type::Int:
    return "int";
  case Type::Dbl:
    return "double";
  case Type::Str:
    return "string";
  case Type::Vec:
    return "vec";
  case Type::Dict:
    return "dict";
  case Type::Obj:
    return "object";
  }
  unreachable("unhandled Type");
}

uint64_t DictKey::hash() const {
  if (IsStr)
    return hashString(StrKey);
  return hashCombine(0x9e3779b97f4a7c15ULL, static_cast<uint64_t>(IntKey));
}

namespace {

// Heterogeneous key equality/hash, each agreeing exactly with
// DictKey::operator== / DictKey::hash for the corresponding key shape.
bool dictKeyEq(const DictKey &E, const DictKey &K) { return E == K; }
bool dictKeyEq(const DictKey &E, std::string_view S) {
  return E.IsStr && E.StrKey == S;
}
bool dictKeyEq(const DictKey &E, int64_t I) {
  return !E.IsStr && E.IntKey == I;
}

uint64_t dictKeyHash(const DictKey &K) { return K.hash(); }
uint64_t dictKeyHash(std::string_view S) { return hashString(S); }
uint64_t dictKeyHash(int64_t I) {
  return hashCombine(0x9e3779b97f4a7c15ULL, static_cast<uint64_t>(I));
}

} // namespace

void VmDict::healIndex() const {
  size_t N = Entries.size();
  // Rebuild when the table is absent, over half full, or (defensively)
  // claims coverage beyond the current entry count.
  if (Index.empty() || N * 2 > Index.size() || IndexedCount > N) {
    size_t Cap = 2 * kIndexThreshold;
    while (Cap < N * 2)
      Cap <<= 1;
    Index.assign(Cap, -1);
    IndexedCount = 0;
  }
  size_t Mask = Index.size() - 1;
  for (; IndexedCount < N; ++IndexedCount) {
    const DictKey &K = Entries[IndexedCount].first;
    size_t Slot = dictKeyHash(K) & Mask;
    while (Index[Slot] >= 0) {
      if (Entries[static_cast<size_t>(Index[Slot])].first == K)
        break; // Duplicate key: keep the earlier entry (first-match wins).
      Slot = (Slot + 1) & Mask;
    }
    if (Index[Slot] < 0)
      Index[Slot] = static_cast<int32_t>(IndexedCount);
  }
}

template <typename KeyT> int64_t VmDict::findImpl(const KeyT &K) const {
  size_t N = Entries.size();
  if (N < kIndexThreshold) {
    for (size_t I = 0; I < N; ++I)
      if (dictKeyEq(Entries[I].first, K))
        return static_cast<int64_t>(I);
    return -1;
  }
  healIndex();
  size_t Mask = Index.size() - 1;
  for (size_t Slot = dictKeyHash(K) & Mask;; Slot = (Slot + 1) & Mask) {
    int32_t At = Index[Slot];
    if (At < 0)
      return -1;
    if (dictKeyEq(Entries[static_cast<size_t>(At)].first, K))
      return At;
  }
}

int64_t VmDict::find(const DictKey &K) const { return findImpl(K); }
int64_t VmDict::find(std::string_view S) const { return findImpl(S); }
int64_t VmDict::find(int64_t I) const { return findImpl(I); }

bool jumpstart::runtime::toBool(const Value &V) {
  switch (V.T) {
  case Type::Null:
    return false;
  case Type::Bool:
    return V.B;
  case Type::Int:
    return V.I != 0;
  case Type::Dbl:
    return V.D != 0.0;
  case Type::Str:
    return !V.S->Data.empty();
  case Type::Vec:
    return !V.V->Elems.empty();
  case Type::Dict:
    return !V.Dt->Entries.empty();
  case Type::Obj:
    return true;
  }
  unreachable("unhandled Type");
}

double jumpstart::runtime::toDouble(const Value &V, bool *Ok) {
  if (Ok)
    *Ok = true;
  switch (V.T) {
  case Type::Bool:
    return V.B ? 1.0 : 0.0;
  case Type::Int:
    return static_cast<double>(V.I);
  case Type::Dbl:
    return V.D;
  default:
    if (Ok)
      *Ok = false;
    return 0.0;
  }
}

int64_t jumpstart::runtime::toInt(const Value &V) {
  switch (V.T) {
  case Type::Bool:
    return V.B ? 1 : 0;
  case Type::Int:
    return V.I;
  case Type::Dbl:
    return static_cast<int64_t>(V.D);
  default:
    return 0;
  }
}

std::string jumpstart::runtime::toString(const Value &V) {
  switch (V.T) {
  case Type::Null:
    return "";
  case Type::Bool:
    return V.B ? "1" : "";
  case Type::Int:
    return strFormat("%lld", static_cast<long long>(V.I));
  case Type::Dbl:
    return strFormat("%g", V.D);
  case Type::Str:
    return V.S->Data;
  case Type::Vec:
    return "vec";
  case Type::Dict:
    return "dict";
  case Type::Obj:
    return "object";
  }
  unreachable("unhandled Type");
}

Value jumpstart::runtime::arith(ArithOp O, const Value &A, const Value &B) {
  if (!A.isNumeric() && !A.isBool())
    return Value::null();
  if (!B.isNumeric() && !B.isBool())
    return Value::null();

  bool BothInt = (A.isInt() || A.isBool()) && (B.isInt() || B.isBool());
  if (BothInt) {
    int64_t X = toInt(A);
    int64_t Y = toInt(B);
    switch (O) {
    case ArithOp::Add:
      return Value::integer(X + Y);
    case ArithOp::Sub:
      return Value::integer(X - Y);
    case ArithOp::Mul:
      return Value::integer(X * Y);
    case ArithOp::Div:
      if (Y == 0)
        return Value::null();
      if (X % Y == 0)
        return Value::integer(X / Y);
      return Value::dbl(static_cast<double>(X) / static_cast<double>(Y));
    case ArithOp::Mod:
      if (Y == 0)
        return Value::null();
      return Value::integer(X % Y);
    }
    unreachable("unhandled ArithOp");
  }

  double X = toDouble(A);
  double Y = toDouble(B);
  switch (O) {
  case ArithOp::Add:
    return Value::dbl(X + Y);
  case ArithOp::Sub:
    return Value::dbl(X - Y);
  case ArithOp::Mul:
    return Value::dbl(X * Y);
  case ArithOp::Div:
    if (Y == 0.0)
      return Value::null();
    return Value::dbl(X / Y);
  case ArithOp::Mod:
    if (Y == 0.0)
      return Value::null();
    return Value::dbl(std::fmod(X, Y));
  }
  unreachable("unhandled ArithOp");
}

bool jumpstart::runtime::valueEquals(const Value &A, const Value &B) {
  // Numeric (and bool) operands compare numerically, across types.
  bool ANum = A.isNumeric() || A.isBool();
  bool BNum = B.isNumeric() || B.isBool();
  if (ANum && BNum)
    return toDouble(A) == toDouble(B);
  if (A.T != B.T)
    return false;
  switch (A.T) {
  case Type::Null:
    return true;
  case Type::Str:
    return A.S->Data == B.S->Data;
  case Type::Vec:
    return A.V == B.V;
  case Type::Dict:
    return A.Dt == B.Dt;
  case Type::Obj:
    return A.O == B.O;
  default:
    unreachable("numeric types handled above");
  }
}

Value jumpstart::runtime::compare(CmpOp O, const Value &A, const Value &B) {
  if (O == CmpOp::Eq)
    return Value::boolean(valueEquals(A, B));
  if (O == CmpOp::Ne)
    return Value::boolean(!valueEquals(A, B));

  // Ordering: numerics numerically, strings lexicographically, otherwise
  // order by type tag (total and deterministic).
  int Ordering;
  bool ANum = A.isNumeric() || A.isBool();
  bool BNum = B.isNumeric() || B.isBool();
  if (ANum && BNum) {
    double X = toDouble(A);
    double Y = toDouble(B);
    Ordering = (X < Y) ? -1 : (X > Y) ? 1 : 0;
  } else if (A.isStr() && B.isStr()) {
    int C = A.S->Data.compare(B.S->Data);
    Ordering = (C < 0) ? -1 : (C > 0) ? 1 : 0;
  } else {
    int TA = static_cast<int>(A.T);
    int TB = static_cast<int>(B.T);
    Ordering = (TA < TB) ? -1 : (TA > TB) ? 1 : 0;
  }

  switch (O) {
  case CmpOp::Lt:
    return Value::boolean(Ordering < 0);
  case CmpOp::Le:
    return Value::boolean(Ordering <= 0);
  case CmpOp::Gt:
    return Value::boolean(Ordering > 0);
  case CmpOp::Ge:
    return Value::boolean(Ordering >= 0);
  case CmpOp::Eq:
  case CmpOp::Ne:
    break;
  }
  unreachable("Eq/Ne handled above");
}

Value jumpstart::runtime::concat(Heap &H, const Value &A, const Value &B) {
  std::string Result = toString(A);
  Result += toString(B);
  return Value::str(H.allocString(Result));
}
