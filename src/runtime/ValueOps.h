//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic-language value semantics shared by the interpreter and the JIT
/// lowering: truthiness, coercions, arithmetic, comparison, concatenation.
///
/// Semantics are total: ill-typed operations yield Null (and the caller may
/// count a "notice"), never a crash -- the VM must survive anything the
/// workload generator or a fuzzer produces.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_RUNTIME_VALUEOPS_H
#define JUMPSTART_RUNTIME_VALUEOPS_H

#include "runtime/Heap.h"
#include "runtime/Value.h"

#include <string>

namespace jumpstart::runtime {

/// PHP-style truthiness: null/false/0/0.0/""/empty containers are false.
bool toBool(const Value &V);

/// Numeric coercion for arithmetic; non-numeric types coerce to 0 with
/// \p *Ok set to false.
double toDouble(const Value &V, bool *Ok = nullptr);

/// Integer coercion (truncating); non-numeric types yield 0.
int64_t toInt(const Value &V);

/// Renders \p V as a string (used by Concat and by the print builtin).
std::string toString(const Value &V);

/// Arithmetic kinds shared with the JIT lowering.
enum class ArithOp { Add, Sub, Mul, Div, Mod };

/// Applies \p O.  Int op Int stays Int (Div yields Dbl unless exact);
/// any Dbl operand promotes to Dbl; division or modulo by zero and
/// non-numeric operands yield Null.
Value arith(ArithOp O, const Value &A, const Value &B);

/// Comparison kinds shared with the JIT lowering.
enum class CmpOp { Eq, Ne, Lt, Le, Gt, Ge };

/// Loose equality: numerics compare numerically, strings byte-wise,
/// objects/containers by identity; mismatched non-numeric types are
/// unequal.
bool valueEquals(const Value &A, const Value &B);

/// Applies \p O, returning a Bool value.  Ordering on mismatched
/// non-numeric types is by type tag (deterministic, total).
Value compare(CmpOp O, const Value &A, const Value &B);

/// String concatenation with coercion; allocates the result on \p H.
Value concat(Heap &H, const Value &A, const Value &B);

} // namespace jumpstart::runtime

#endif // JUMPSTART_RUNTIME_VALUEOPS_H
