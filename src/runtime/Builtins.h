//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Native (builtin) functions callable from bytecode via NativeCall.
///
/// These model HHVM extensions: fixed-arity native entry points the JIT
/// treats as opaque calls.  The standard table covers the string/number/
/// container helpers the workload generator and the examples rely on.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_RUNTIME_BUILTINS_H
#define JUMPSTART_RUNTIME_BUILTINS_H

#include "runtime/Heap.h"
#include "runtime/Value.h"

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace jumpstart::runtime {

/// Per-call environment handed to native functions.
struct NativeContext {
  Heap &H;
  /// Request output sink (the print builtin appends here); may be null.
  std::string *Output = nullptr;
};

/// A native function: receives \p N argument values, returns one value.
using NativeFn = Value (*)(NativeContext &Ctx, const Value *Args, uint32_t N);

/// One registered builtin.
struct Builtin {
  std::string Name;
  uint32_t Arity;
  NativeFn Fn;
};

/// The table of builtins available to a program.  Builtin ids are dense
/// indices assigned at registration; bytecode NativeCall immediates use
/// these ids.
class BuiltinTable {
public:
  /// \returns the process-wide standard table (print, strlen, substr, ...).
  static const BuiltinTable &standard();

  /// Registers a builtin; \returns its id.  Names must be unique.
  uint32_t add(std::string_view Name, uint32_t Arity, NativeFn Fn);

  /// \returns the id of \p Name, or kNotFound.
  static constexpr uint32_t kNotFound = ~0u;
  uint32_t find(std::string_view Name) const;

  const Builtin &builtin(uint32_t Id) const;
  uint32_t size() const { return static_cast<uint32_t>(Builtins.size()); }

private:
  std::vector<Builtin> Builtins;
  std::unordered_map<std::string, uint32_t> Index;
};

} // namespace jumpstart::runtime

#endif // JUMPSTART_RUNTIME_BUILTINS_H
