//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamically-typed value representation (HHVM's "TypedValue").
///
/// A Value is a type tag plus a payload.  Heap payloads (strings, vecs,
/// dicts, objects) are raw pointers owned by the request-local Heap; values
/// never outlive the request that created them, mirroring HHVM's
/// request-local memory model.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_RUNTIME_VALUE_H
#define JUMPSTART_RUNTIME_VALUE_H

#include "bytecode/Ids.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace jumpstart::runtime {

struct VmString;
struct VmVec;
struct VmDict;
struct VmObject;

/// Runtime type tags.  The JIT's type-specialization guards and the profile
/// package's type observations use this same enum.
enum class Type : uint8_t {
  Null,
  Bool,
  Int,
  Dbl,
  Str,
  Vec,
  Dict,
  Obj,
};

/// \returns the printable name of \p T.
const char *typeName(Type T);

/// A dynamically-typed value.
struct Value {
  Type T = Type::Null;
  union {
    bool B;
    int64_t I;
    double D;
    VmString *S;
    VmVec *V;
    VmDict *Dt;
    VmObject *O;
  };

  Value() : I(0) {}

  static Value null() { return Value(); }
  static Value boolean(bool B) {
    Value R;
    R.T = Type::Bool;
    R.B = B;
    return R;
  }
  static Value integer(int64_t I) {
    Value R;
    R.T = Type::Int;
    R.I = I;
    return R;
  }
  static Value dbl(double D) {
    Value R;
    R.T = Type::Dbl;
    R.D = D;
    return R;
  }
  static Value str(VmString *S) {
    Value R;
    R.T = Type::Str;
    R.S = S;
    return R;
  }
  static Value vec(VmVec *V) {
    Value R;
    R.T = Type::Vec;
    R.V = V;
    return R;
  }
  static Value dict(VmDict *D) {
    Value R;
    R.T = Type::Dict;
    R.Dt = D;
    return R;
  }
  static Value obj(VmObject *O) {
    Value R;
    R.T = Type::Obj;
    R.O = O;
    return R;
  }

  bool isNull() const { return T == Type::Null; }
  bool isBool() const { return T == Type::Bool; }
  bool isInt() const { return T == Type::Int; }
  bool isDbl() const { return T == Type::Dbl; }
  bool isStr() const { return T == Type::Str; }
  bool isVec() const { return T == Type::Vec; }
  bool isDict() const { return T == Type::Dict; }
  bool isObj() const { return T == Type::Obj; }
  bool isNumeric() const { return T == Type::Int || T == Type::Dbl; }
};

/// A heap-allocated string.  Addr is the simulated heap address used for
/// data-cache tracing.
struct VmString {
  std::string Data;
  uint64_t Addr = 0;
};

/// A heap-allocated vector (dense array).
struct VmVec {
  std::vector<Value> Elems;
  uint64_t Addr = 0;
};

/// A key in a dict: either an integer or a string (by value; dict keys are
/// small in practice).
struct DictKey {
  bool IsStr = false;
  int64_t IntKey = 0;
  std::string StrKey;

  static DictKey fromInt(int64_t I) {
    DictKey K;
    K.IntKey = I;
    return K;
  }
  static DictKey fromStr(std::string S) {
    DictKey K;
    K.IsStr = true;
    K.StrKey = std::move(S);
    return K;
  }

  bool operator==(const DictKey &O) const {
    if (IsStr != O.IsStr)
      return false;
    return IsStr ? StrKey == O.StrKey : IntKey == O.IntKey;
  }

  uint64_t hash() const;
};

/// A heap-allocated ordered dictionary.  Insertion order is preserved
/// (observable in the source language), lookup is via a side index.
struct VmDict {
  std::vector<std::pair<DictKey, Value>> Entries;
  uint64_t Addr = 0;

  /// Below this entry count a linear scan beats hashing; above it find()
  /// builds and maintains a hash index.
  static constexpr size_t kIndexThreshold = 8;

  /// Lookup returning the entry index or -1.  Small dicts scan linearly;
  /// larger ones probe a lazily built open-addressing index that maps key
  /// hash -> first entry with that key, preserving the linear scan's
  /// first-match semantics.
  int64_t find(const DictKey &K) const;

  /// Allocation-free lookups for the common key shapes: the string
  /// overload avoids materializing a DictKey (and its std::string) per
  /// probe.  Hashes and equality match DictKey's exactly.
  int64_t find(std::string_view S) const;
  int64_t find(int64_t I) const;

private:
  /// Open-addressing table of entry indices (-1 = empty), sized to a
  /// power of two at <= 50% load.  Mutable: it is a cache over Entries,
  /// (re)built inside const find().  IndexedCount is how many leading
  /// entries the table covers; entries appended directly to Entries
  /// since the last probe are absorbed incrementally (self-healing), so
  /// code paths that bypass find() for insertion stay correct.
  mutable std::vector<int32_t> Index;
  mutable size_t IndexedCount = 0;

  void healIndex() const;
  template <typename KeyT> int64_t findImpl(const KeyT &K) const;
};

class ClassLayout;

/// A heap-allocated object: its runtime class layout plus property slots
/// in *physical* order (which Jump-Start's property-reordering optimization
/// may differ from declared order; see runtime/ClassLayout.h).
struct VmObject {
  const ClassLayout *Layout = nullptr;
  std::vector<Value> Slots;
  uint64_t Addr = 0;

  /// Simulated address of property slot \p Slot, used for D-cache tracing.
  /// Slots are 16 bytes (type tag + payload, padded), after a 16-byte
  /// object header.
  uint64_t slotAddr(uint32_t Slot) const { return Addr + 16 + 16ull * Slot; }
};

} // namespace jumpstart::runtime

#endif // JUMPSTART_RUNTIME_VALUE_H
