//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "jit/Region.h"

#include "support/Assert.h"

#include <algorithm>

using namespace jumpstart;
using namespace jumpstart::jit;

namespace {

/// Recursive inline planner.
class InlinePlanner {
public:
  InlinePlanner(const bc::Repo &R, bc::BlockCache &Blocks,
                const profile::ProfileStore &Store,
                const RegionParams &Params, const ProvenFacts *Facts,
                RegionDescriptor &Out)
      : R(R), Blocks(Blocks), Store(Store), Params(Params), Facts(Facts),
        Out(Out) {}

  void plan(bc::FuncId F, uint32_t Depth) {
    const profile::FuncProfile *Prof = Store.find(F.raw());
    const bc::Function &Func = R.func(F);
    const bc::BlockList &BL = Blocks.blocks(F);

    for (uint32_t Pc = 0; Pc < Func.Code.size(); ++Pc) {
      const bc::Instr &In = Func.Code[Pc];
      if (In.Opcode == bc::Op::FCall) {
        considerInline(F, Pc, In.funcImm(), Prof, BL, Depth);
        continue;
      }
      if (In.Opcode == bc::Op::FCallObj) {
        bc::FuncId Target = Prof ? dominantTarget(*Prof, Pc) : bc::FuncId();
        if (!Target.valid())
          Target = provenTarget(F, Pc);
        if (!Target.valid())
          continue;
        // Devirtualize; additionally inline when the target qualifies.
        if (!considerInline(F, Pc, Target, Prof, BL, Depth))
          Out.DevirtualizedCalls[RegionDescriptor::siteKey(F, Pc)] = Target;
      }
    }
  }

private:
  /// \returns the analysis-proven single target of the virtual site, or
  /// an invalid id.
  bc::FuncId provenTarget(bc::FuncId F, uint32_t Pc) const {
    if (!Facts)
      return bc::FuncId();
    auto It = Facts->ProvenCalls.find(ProvenFacts::siteKey(F.raw(), Pc));
    return It == Facts->ProvenCalls.end() ? bc::FuncId()
                                          : bc::FuncId(It->second.Target);
  }

  /// \returns the callee covering CallTargetMonoThreshold of the site's
  /// profile, or an invalid id.
  bc::FuncId dominantTarget(const profile::FuncProfile &Prof,
                            uint32_t Pc) const {
    auto It = Prof.CallTargets.find(Pc);
    if (It == Prof.CallTargets.end())
      return bc::FuncId();
    uint64_t Total = 0;
    uint64_t BestCount = 0;
    uint32_t Best = 0;
    for (const auto &[Callee, Count] : It->second) {
      Total += Count;
      if (Count > BestCount) {
        BestCount = Count;
        Best = Callee;
      }
    }
    if (Total == 0)
      return bc::FuncId();
    if (static_cast<double>(BestCount) <
        Params.CallTargetMonoThreshold * static_cast<double>(Total))
      return bc::FuncId();
    return bc::FuncId(Best);
  }

  /// Applies the inlining heuristics to one call site.  \returns true if
  /// the site was inlined.
  bool considerInline(bc::FuncId Caller, uint32_t Pc, bc::FuncId Callee,
                      const profile::FuncProfile *CallerProf,
                      const bc::BlockList &BL, uint32_t Depth) {
    if (Depth >= Params.MaxInlineDepth)
      return false;
    if (Callee == Out.Func || Callee == Caller)
      return false; // no recursive inlining
    const bc::Function &CalleeFunc = R.func(Callee);
    if (CalleeFunc.Code.empty() ||
        CalleeFunc.Code.size() > Params.MaxInlineBytecodes)
      return false;
    if (Out.TotalBytecodes + CalleeFunc.Code.size() >
        Params.MaxRegionBytecodes)
      return false;
    // The callee must itself be profiled: the region compiler only forms
    // non-trivial regions where it has data (paper section V-B).
    if (!Store.find(Callee.raw()))
      return false;
    // Site hotness: the enclosing block must run often relative to entry.
    if (CallerProf && CallerProf->EntryCount > 0 &&
        BL.numBlocks() == CallerProf->BlockCounts.size()) {
      uint64_t SiteCount = CallerProf->BlockCounts[BL.blockOf(Pc)];
      if (static_cast<double>(SiteCount) <
          Params.MinSiteFrequency *
              static_cast<double>(CallerProf->EntryCount))
        return false;
    }
    // Each function is inlined at most once per region (the shadow
    // tracer's block map has one copy per function).
    if (std::find(Out.InlinedFuncs.begin(), Out.InlinedFuncs.end(),
                  Callee) != Out.InlinedFuncs.end())
      return false;

    Out.InlinedCalls[RegionDescriptor::siteKey(Caller, Pc)] = Callee;
    Out.InlinedFuncs.push_back(Callee);
    Out.TotalBytecodes += static_cast<uint32_t>(CalleeFunc.Code.size());
    plan(Callee, Depth + 1);
    return true;
  }

  const bc::Repo &R;
  bc::BlockCache &Blocks;
  const profile::ProfileStore &Store;
  const RegionParams &Params;
  const ProvenFacts *Facts;
  RegionDescriptor &Out;
};

} // namespace

RegionDescriptor jumpstart::jit::selectRegion(const bc::Repo &R,
                                              bc::BlockCache &Blocks,
                                              const profile::ProfileStore &S,
                                              bc::FuncId Func,
                                              const RegionParams &Params,
                                              const ProvenFacts *Facts) {
  RegionDescriptor Out;
  Out.Func = Func;
  Out.TotalBytecodes = static_cast<uint32_t>(R.func(Func).Code.size());
  InlinePlanner Planner(R, Blocks, S, Params, Facts, Out);
  Planner.plan(Func, /*Depth=*/0);
  return Out;
}
