//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "jit/CodeCache.h"

#include "support/Assert.h"

using namespace jumpstart;
using namespace jumpstart::jit;

CodeCache::CodeCache(CodeCacheConfig C) : Config(C) {}

uint64_t CodeCache::base(CodeArea Area) const {
  // A fixed, disjoint layout: | hot | cold | profile | live |, starting at
  // an address comfortably away from the simulated heap.
  constexpr uint64_t kBase = 0x10000000ull;
  switch (Area) {
  case CodeArea::Hot:
    return kBase;
  case CodeArea::Cold:
    return kBase + Config.HotBytes;
  case CodeArea::Profile:
    return kBase + Config.HotBytes + Config.ColdBytes;
  case CodeArea::Live:
    return kBase + Config.HotBytes + Config.ColdBytes + Config.ProfileBytes;
  }
  unreachable("unhandled CodeArea");
}

uint64_t CodeCache::capacity(CodeArea Area) const {
  switch (Area) {
  case CodeArea::Hot:
    return Config.HotBytes;
  case CodeArea::Cold:
    return Config.ColdBytes;
  case CodeArea::Profile:
    return Config.ProfileBytes;
  case CodeArea::Live:
    return Config.LiveBytes;
  }
  unreachable("unhandled CodeArea");
}

uint64_t CodeCache::used(CodeArea Area) const {
  return Used[static_cast<unsigned>(Area)];
}

uint64_t CodeCache::allocate(CodeArea Area, uint64_t Bytes) {
  uint64_t &U = Used[static_cast<unsigned>(Area)];
  if (U + Bytes > capacity(Area))
    return 0;
  // 16-byte alignment, like real translation starts.
  uint64_t Addr = base(Area) + U;
  U += (Bytes + 15) & ~15ull;
  return Addr;
}

uint64_t CodeCache::totalUsed() const {
  return Used[0] + Used[1] + Used[2] + Used[3];
}

void CodeCache::resetHotCold() {
  Used[static_cast<unsigned>(CodeArea::Hot)] = 0;
  Used[static_cast<unsigned>(CodeArea::Cold)] = 0;
}
