//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A translation: one unit of JITed machine code and its placement.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_JIT_TRANSLATION_H
#define JUMPSTART_JIT_TRANSLATION_H

#include "jit/Vasm.h"

#include <memory>
#include <vector>

namespace jumpstart::jit {

/// The three machine-code flavours HHVM produces (paper section II-A).
enum class TransKind : uint8_t {
  Live,      ///< Tracelet compiler output, from live VM state.
  Profile,   ///< Tier-1 instrumented translation.
  Optimized, ///< Tier-2 region compiler output.
};

inline const char *transKindName(TransKind K) {
  switch (K) {
  case TransKind::Live:
    return "live";
  case TransKind::Profile:
    return "profile";
  case TransKind::Optimized:
    return "optimized";
  }
  return "?";
}

/// One translation.  The Vasm unit is retained (it is the "machine code"
/// the shadow tracer executes); placement assigns each block an address
/// in the code cache.
struct Translation {
  uint32_t Id = 0;
  TransKind Kind = TransKind::Live;
  std::unique_ptr<VasmUnit> Unit;
  /// Per-Vasm-block placed addresses; 0 until placed.
  std::vector<uint64_t> BlockAddrs;
  /// Blocks whose trailing unconditional jump was elided at placement
  /// because the jump target landed immediately after the block (layout
  /// turning jumps into fallthroughs shrinks the code, which is part of
  /// why good block order helps the I-cache).
  std::vector<bool> JumpElided;
  /// True once the translation is reachable (placed in the code cache).
  bool Placed = false;
  /// Average Vasm instructions executed per bytecode instruction -- the
  /// execution cost of running this translation, fed to the VM's virtual
  /// clock.  Computed at compile time from the unit.
  double CostPerBytecode = 0;

  bc::FuncId func() const { return Unit->Func; }
  uint64_t entryAddr() const {
    return BlockAddrs.empty() ? 0 : BlockAddrs[0];
  }
};

} // namespace jumpstart::jit

#endif // JUMPSTART_JIT_TRANSLATION_H
