//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-threaded retranslate-all (paper Figure 3c: the consumer runs
/// Optimizing and Relocating "with all cores before serving").
///
/// The driver splits retranslate-all into a parallel and a serial half:
///
///  1. *Parallel lowering* -- every profiled function (plus the package's
///     live-code tail under PrecompileLiveCode) is lowered on the host
///     thread pool into per-task scratch slots, and the block layout of
///     each optimized unit is precomputed.  Lowering and layout are pure
///     given an immutable profile store and a pre-warmed block cache, so
///     the only shared mutable structure -- bc::BlockCache -- is warmed
///     serially up front.
///
///  2. *Serial pipeline* -- the scratch is installed into the Jit and the
///     EXACT existing single-threaded job pipeline runs: jobs are
///     enqueued in hotness order, drained in slices, translations are
///     created in the same TransDb order, and the relocation pass places
///     them into the CodeCache in C3/FunctionSort order.  Jobs consume
///     scratch instead of recomputing, so the pipeline is fast, but every
///     virtual cost, translation id, code byte and span is identical to
///     the serial run.  Relocation/placement order is the determinism
///     barrier and never leaves this thread.
///
/// Consequence: `--threads N` changes host wall-clock only; exports are
/// byte-identical for any worker count.  The *modeled* parallelism (how
/// much virtual wall time the precompile charges) is the separate
/// JitConfig::Parallelism knob applied by the caller's clock advance.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_JIT_PARALLELRETRANSLATE_H
#define JUMPSTART_JIT_PARALLELRETRANSLATE_H

#include "jit/Jit.h"

#include <cstddef>
#include <cstdint>
#include <functional>

namespace jumpstart::support {
class ThreadPool;
}

namespace jumpstart::jit {

/// What one parallel retranslate-all did, in virtual cost units and
/// pipeline counts.  Everything here is host-thread-count-invariant
/// except HostWorkers itself.
struct RetranslateStats {
  double CompileUnits = 0;     ///< optimize + live compile cost enqueued
  double RelocateUnits = 0;    ///< relocation cost drained
  size_t FunctionsCompiled = 0;   ///< compile jobs enqueued
  size_t TranslationsPlaced = 0;  ///< translations placed in the cache
  uint32_t HostWorkers = 0;       ///< pool size used (0 = inline)

  double totalUnits() const { return CompileUnits + RelocateUnits; }
};

/// Drives one retranslate-all over \p J using \p Pool for host-side
/// lowering.  \p Pool may be null (everything runs inline; output is
/// identical either way).
class ParallelRetranslate {
public:
  ParallelRetranslate(Jit &J, support::ThreadPool *Pool)
      : J(J), Pool(Pool) {}

  /// Runs the full pipeline to completion.  The Jit must be in the
  /// Profiling phase with work to find: either its own profile store is
  /// populated (seeder-style retranslate-all) or a package was installed
  /// with Jit::installPackageProfiles (consumer precompile; this also
  /// enqueues the live-code tail under PrecompileLiveCode).
  ///
  /// The serial drain consumes work in slices of \p SliceUnits;
  /// \p OnSlice (optional) observes each slice's consumed units so the
  /// caller can advance its virtual clock -- dividing by the *modeled*
  /// parallelism, not by the host worker count.
  RetranslateStats run(double SliceUnits,
                       const std::function<void(double)> &OnSlice = {});

  /// Pre-lowers \p J's currently queued jobs on \p Pool without running
  /// any of them: optimized/live units are lowered and block layouts
  /// precomputed into the Jit's scratch slots, which the serial pipeline
  /// then consumes instead of recomputing.  Virtual cost accounting and
  /// placement order are untouched, so output is byte-identical to a
  /// scratch-less drain -- only host wall-clock changes.  Intended for
  /// incremental drains (vm::Server::runBackgroundJitWork) where the
  /// caller owns the slice loop; idempotent, so calling it before every
  /// slice is cheap once the scratch is populated.
  static void prelowerPending(Jit &J, support::ThreadPool *Pool);

private:
  Jit &J;
  support::ThreadPool *Pool;
};

} // namespace jumpstart::jit

#endif // JUMPSTART_JIT_PARALLELRETRANSLATE_H
