//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable, epoch-published view of the translation database.
///
/// Request threads must never read TransDb (or Translation payloads)
/// while the background retranslate-all mutates them.  Instead the
/// compile thread captures a TransSnapshot -- everything a request
/// needs from the JIT, today just the per-function execution cost and
/// the phase -- and installs it through a SnapshotPublisher.  Readers
/// pin an epoch (support::EpochDomain), load the current snapshot, and
/// use it without locks; superseded snapshots are retired into the
/// domain and freed once no pinned reader can observe them.
///
/// The snapshot is deliberately value-only: plain vectors, no pointers
/// into the Jit.  Capturing costs one pass over the function table on
/// the publisher thread; request threads then index an immutable array.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_JIT_TRANSSNAPSHOT_H
#define JUMPSTART_JIT_TRANSSNAPSHOT_H

#include "bytecode/Repo.h"
#include "support/Epoch.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace jumpstart::jit {

class Jit;
enum class JitPhase : uint8_t;

/// One immutable view of the translation state.  Built by capture() on
/// the publishing thread; never written afterwards.
struct TransSnapshot {
  /// Monotone publication number (1 = first snapshot).
  uint64_t Version = 0;

  /// The JIT phase at capture time.
  JitPhase Phase;

  /// Placed translations visible at capture time (diagnostics).
  uint64_t Translations = 0;

  /// Execution cost (cost units per bytecode) per raw FuncId, folding
  /// Jit::execCostPerBytecode over every function.
  std::vector<double> CostPerBytecode;

  /// Cost of running \p F under this snapshot.
  double costFor(bc::FuncId F) const { return CostPerBytecode[F.raw()]; }

  /// Captures the current translation state of \p J.  Must run on the
  /// thread that owns the Jit (the background compile thread, or the
  /// serial path); the Jit must not be mutated during the call.
  static std::unique_ptr<const TransSnapshot> capture(const Jit &J,
                                                      uint64_t Version);
};

/// Single-writer publication point for TransSnapshots.  The writer
/// installs new snapshots with publish(); readers call current() while
/// pinned in the associated EpochDomain.  Superseded snapshots are
/// retired into the domain, which frees them once every reader that
/// could hold the old pointer has unpinned.
class SnapshotPublisher {
public:
  explicit SnapshotPublisher(support::EpochDomain &D) : Domain(D) {}

  SnapshotPublisher(const SnapshotPublisher &) = delete;
  SnapshotPublisher &operator=(const SnapshotPublisher &) = delete;

  /// The destructor drops the live snapshot directly: by then the
  /// owning server has quiesced its readers (asserted via the domain's
  /// reclaimAll), so no pin can be outstanding.
  ~SnapshotPublisher() { delete Cur.exchange(nullptr, std::memory_order_acq_rel); }

  /// Atomically installs \p Next as the current snapshot, retires the
  /// previous one into the epoch domain, and opportunistically reclaims.
  /// Writer thread only.
  void publish(std::unique_ptr<const TransSnapshot> Next);

  /// The current snapshot, or nullptr before the first publish().  The
  /// caller must hold an EpochGuard on the same domain for as long as
  /// the returned pointer is used.
  const TransSnapshot *current() const {
    return Cur.load(std::memory_order_acquire);
  }

  /// Snapshots installed so far.
  uint64_t published() const { return Published.load(std::memory_order_relaxed); }

  support::EpochDomain &domain() { return Domain; }

private:
  support::EpochDomain &Domain;
  std::atomic<const TransSnapshot *> Cur{nullptr};
  std::atomic<uint64_t> Published{0};
};

} // namespace jumpstart::jit

#endif // JUMPSTART_JIT_TRANSSNAPSHOT_H
