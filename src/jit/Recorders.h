//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution-callback implementations that model the JIT's
/// instrumentation:
///
///  - JitProfilingHooks: what instrumented translations record.  For
///    functions running tier-1 (profile) translations it collects block
///    counters, call-target profiles, type observations and
///    property-access counts.  When seeder instrumentation is enabled it
///    additionally collects, for functions running instrumented optimized
///    translations, the Vasm block counters and tier-2 call arcs of paper
///    sections V-A and V-B.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_JIT_RECORDERS_H
#define JUMPSTART_JIT_RECORDERS_H

#include "interp/ExecCallbacks.h"
#include "jit/Jit.h"

#include <vector>

namespace jumpstart::jit {

/// The VM server attaches one of these while serving requests; it routes
/// each event to the right profile sink based on the executing function's
/// current tier.
class JitProfilingHooks : public interp::ExecCallbacks {
public:
  explicit JitProfilingHooks(Jit &J);

  void onFuncEnter(bc::FuncId Callee, bc::FuncId Caller,
                   const runtime::Value *Args, uint32_t NumArgs) override;
  void onFuncExit(bc::FuncId F) override;
  void onBlockEnter(bc::FuncId F, uint32_t Block) override;
  void onVirtualCall(bc::FuncId Caller, uint32_t InstrIndex,
                     bc::FuncId Callee) override;
  void onTypeObserve(bc::FuncId F, uint32_t InstrIndex,
                     runtime::Type T) override;
  void onPropAccess(bc::ClassId Cls, bc::StringId Prop, bool IsWrite,
                    uint64_t Addr) override;

private:
  struct Frame {
    uint32_t Func = 0;
    /// Tier the function executes in (translation kind), or no
    /// translation at all.
    bool IsProfileTier = false;
    bool IsInstrumentedOpt = false;
    /// Unit whose Vasm counters this frame bumps (the caller's unit when
    /// this function is inlined there).
    const VasmUnit *ActiveUnit = nullptr;
    profile::FuncProfile *Prof = nullptr;
  };

  Frame *top() { return Frames.empty() ? nullptr : &Frames.back(); }

  Jit &J;
  std::vector<Frame> Frames;
  /// Previous property access (class/prop raw ids) for affinity pairs.
  uint32_t LastPropCls = ~0u;
  uint32_t LastPropName = ~0u;
};

} // namespace jumpstart::jit

#endif // JUMPSTART_JIT_RECORDERS_H
