//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statically-proven facts the JIT may rely on, exported by the
/// whole-program analysis (analysis/WholeProgram.h).
///
/// The dependency arrow points the wrong way for the natural home:
/// js_analysis links js_jit, so the JIT cannot see analysis types.  This
/// header is therefore a plain-old-data drop box: the analysis fills one
/// in, the harness hands it to jit::JitConfig, and Lower/Region consult
/// it without knowing where it came from.  Every consumer must treat the
/// facts as *claims* -- analysis::RegionCheck re-derives each one that a
/// translation acted on (see VasmUnit::ElidedGuards).
///
/// Sites are keyed like jit::RegionDescriptor::siteKey:
/// (FuncId.raw() << 32) | instruction index.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_JIT_PROVENFACTS_H
#define JUMPSTART_JIT_PROVENFACTS_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace jumpstart::jit {

/// Why a class guard at a devirtualized call site can never fail.
enum class GuardProof : uint8_t {
  /// The receiver's exact class is statically known (NewObj provenance)
  /// and resolves the method to the devirtualized target.
  ExactRecv,
  /// The receiver is provably an object, every class of the repo
  /// resolves the method name, and all resolutions agree on one target.
  UniqueMethod,
  /// An operand's statically-proven type mask is inside the set a
  /// profile-placed type guard would have checked.
  TypeProven,
};

const char *guardProofName(GuardProof P);

struct ProvenFacts {
  /// A devirtualized call site whose class guard provably always passes.
  struct CallFact {
    /// Raw FuncId of the proven (and only possible) callee.
    uint32_t Target = 0;
    GuardProof Proof = GuardProof::ExactRecv;
    /// Raw ClassId of the exact receiver class (ExactRecv only; the
    /// sentinel ~0u otherwise).
    uint32_t RecvCls = ~0u;
  };

  /// A site whose receiver class (and thus dispatch/slot) is statically
  /// monomorphic; the harness may pre-populate the interpreter's inline
  /// cache so the site never takes its miss path.
  struct ICSeed {
    enum class Kind : uint8_t { Call, GetProp, SetProp };
    uint32_t Func = 0;
    uint32_t Pc = 0;
    /// Raw ClassId of the proven receiver class.
    uint32_t Cls = 0;
    Kind K = Kind::Call;
  };

  /// Devirtualized-call guard elisions, keyed by site.
  std::map<uint64_t, CallFact> ProvenCalls;

  /// Proven type masks (analysis::AbstractValue bit encoding) for the
  /// operand a profile type guard would check, keyed by site.  Only
  /// sites with a non-Top proven mask are present.
  std::map<uint64_t, uint8_t> ProvenMasks;

  /// Proven-monomorphic dispatch sites eligible for IC seeding.
  std::vector<ICSeed> ICSeeds;

  static uint64_t siteKey(uint32_t Func, uint32_t Pc) {
    return (static_cast<uint64_t>(Func) << 32) | Pc;
  }

  size_t numFacts() const {
    return ProvenCalls.size() + ProvenMasks.size() + ICSeeds.size();
  }
};

inline const char *guardProofName(GuardProof P) {
  switch (P) {
  case GuardProof::ExactRecv:
    return "exact-receiver";
  case GuardProof::UniqueMethod:
    return "unique-method";
  case GuardProof::TypeProven:
    return "type-proven";
  }
  return "?";
}

} // namespace jumpstart::jit

#endif // JUMPSTART_JIT_PROVENFACTS_H
