//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vasm: the JIT's lowest-level IR (named after HHVM's), the representation
/// on which basic-block layout and hot/cold splitting run (paper section
/// V-A).
///
/// In this reproduction Vasm instructions are *abstract machine
/// instructions with concrete byte sizes*.  They are never encoded to real
/// x86: executing a translation means interpreting the region's bytecode
/// semantically while a shadow tracer walks the corresponding laid-out
/// Vasm blocks, emitting instruction-fetch addresses, branch outcomes and
/// data addresses into the machine simulator.  Everything the paper's
/// layout optimizations act on -- instruction bytes, block boundaries,
/// placement -- is faithfully represented.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_JIT_VASM_H
#define JUMPSTART_JIT_VASM_H

#include "bytecode/Ids.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace jumpstart::jit {

/// Kinds of Vasm instructions.  The kind determines what the shadow
/// tracer emits when the instruction "executes".
enum class VKind : uint8_t {
  Generic,    ///< ALU / moves; fetch only.
  Guard,      ///< Type or class check; fetch only (side exit is a block).
  Load,       ///< Heap load; fetch + data access.
  Store,      ///< Heap store; fetch + data access.
  CondBranch, ///< Block-ending conditional branch.
  Jump,       ///< Block-ending unconditional jump.
  Call,       ///< Direct call to another translation or helper.
  IndCall,    ///< Indirect call (virtual dispatch).
  Ret,        ///< Return.
  Counter,    ///< Seeder instrumentation: bump a profile counter.
};

/// One Vasm instruction: a kind and its encoded size in bytes.
struct VInstr {
  VKind Kind;
  uint8_t SizeBytes;
};

/// One Vasm basic block.
struct VBlock {
  std::vector<VInstr> Instrs;
  static constexpr uint32_t kNoSucc = ~0u;
  uint32_t Taken = kNoSucc;
  uint32_t Fallthru = kNoSucc;
  /// Execution weight used by the layout optimizations.  Filled either
  /// from tier-1 counts mapped down (inaccurate) or from the Jump-Start
  /// package's Vasm counters (accurate; paper section V-A).
  uint64_t Weight = 0;

  uint32_t sizeBytes() const {
    uint32_t Total = 0;
    for (const VInstr &I : Instrs)
      Total += I.SizeBytes;
    return Total;
  }
};

/// A compiled unit: the Vasm CFG of one translation, plus the mapping the
/// shadow tracer needs from (function, bytecode block) to the Vasm block
/// implementing it (inlined callees appear under their own FuncId).
class VasmUnit {
public:
  bc::FuncId Func;
  std::vector<VBlock> Blocks;

  /// Registers that bytecode block \p BcBlock of \p F lowers to Vasm
  /// block \p VBlock (inlined callees pass their own FuncId).
  void mapBlock(bc::FuncId F, uint32_t BcBlock, uint32_t VBlockId) {
    BlockMap[key(F, BcBlock)] = VBlockId;
  }

  /// \returns the Vasm block implementing (F, BcBlock), or kNoBlock.
  static constexpr uint32_t kNoBlock = ~0u;
  uint32_t findBlock(bc::FuncId F, uint32_t BcBlock) const {
    auto It = BlockMap.find(key(F, BcBlock));
    return It == BlockMap.end() ? kNoBlock : It->second;
  }

  /// Functions inlined into this unit (not including Func itself).
  std::vector<bc::FuncId> Inlined;

  /// Layout-only edges from an inlining call site's block to the inlined
  /// callee's entry block (these are not control-flow successors -- the
  /// callee body is reached by falling into the embedded region -- but the
  /// block-layout pass should keep callee bodies near their call sites).
  struct CallEdge {
    uint32_t Src;
    uint32_t Dst;
  };
  std::vector<CallEdge> CallEdges;

  bool isInlined(bc::FuncId F) const {
    for (bc::FuncId I : Inlined)
      if (I == F)
        return true;
    return false;
  }

  /// Total encoded bytes across all blocks.
  uint32_t sizeBytes() const {
    uint32_t Total = 0;
    for (const VBlock &B : Blocks)
      Total += B.sizeBytes();
    return Total;
  }

  /// Total instruction count (the unit of the execution cost model).
  uint64_t numInstrs() const {
    uint64_t Total = 0;
    for (const VBlock &B : Blocks)
      Total += B.Instrs.size();
    return Total;
  }

  /// Number of bytecode instructions this unit covers (region size).
  uint32_t BytecodeCount = 0;

  /// One guard lowering chose not to emit because the whole-program
  /// analysis proved it could never fail.  Each entry is an auditable
  /// claim: analysis::RegionCheck re-derives every one from scratch, and
  /// the DiffRunner ablation matrix checks behavior with elision off.
  struct ElidedGuard {
    /// (FuncId.raw() << 32) | bytecode instruction index -- the site the
    /// guard would have protected (function, not region: inlined callee
    /// sites carry the callee's id).
    uint64_t SiteKey = 0;
    /// jit::GuardProof, widened for storage.
    uint8_t ProofKind = 0;
    /// ExactRecv: the proven receiver ClassId.  TypeProven: the proven
    /// operand mask (analysis bit encoding).  UniqueMethod: ~0u.
    uint32_t ClsOrMask = ~0u;
    /// Call proofs: raw FuncId of the guarded target.  TypeProven: the
    /// mask the elided guard would have checked.
    uint32_t Target = 0;
  };
  std::vector<ElidedGuard> ElidedGuards;

private:
  static uint64_t key(bc::FuncId F, uint32_t BcBlock) {
    return (static_cast<uint64_t>(F.raw()) << 32) | BcBlock;
  }
  std::unordered_map<uint64_t, uint32_t> BlockMap;
};

} // namespace jumpstart::jit

#endif // JUMPSTART_JIT_VASM_H
