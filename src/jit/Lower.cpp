//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "jit/Lower.h"

#include "support/Assert.h"
#include "support/Hashing.h"

#include <algorithm>
#include <unordered_map>

using namespace jumpstart;
using namespace jumpstart::jit;
using bc::Op;

namespace {

/// The lossy bytecode-to-Vasm weight transfer (see file header of
/// Lower.h): counts quantize to powers of two and pick up a
/// deterministic per-block distortion factor in [1/4, 4], standing in for
/// the cumulative weight-scaling errors of the lowering and optimization
/// passes the paper describes in section V-A.  Zero stays zero: lowering
/// never invents execution.
uint64_t distortWeight(uint64_t W, uint32_t FuncRaw, uint32_t BlockId) {
  if (W == 0)
    return 0;
  uint64_t Q = 1;
  while (Q <= W / 2)
    Q <<= 1;
  uint64_t H = hashCombine(FuncRaw * 0x9e3779b9ull, BlockId);
  switch (H % 7) {
  case 0:
    Q = std::max<uint64_t>(1, Q / 16);
    break;
  case 1:
    Q = std::max<uint64_t>(1, Q / 4);
    break;
  case 2:
    Q = std::max<uint64_t>(1, Q / 2);
    break;
  case 3:
    break;
  case 4:
    Q *= 2;
    break;
  case 5:
    Q *= 4;
    break;
  case 6:
    Q *= 16;
    break;
  }
  return Q;
}

/// The analysis-side lattice bit for one runtime type (matches
/// analysis::typeBit; ProvenFacts masks use this encoding).
constexpr uint8_t typeMaskBit(runtime::Type T) {
  return static_cast<uint8_t>(1u << static_cast<unsigned>(T));
}

/// An inlined call site awaiting callee emission.
struct PendingInline {
  uint32_t CallBlock;   ///< Vasm block containing the call site.
  bc::FuncId Callee;
  uint32_t CallBcBlock; ///< Bytecode block of the call site (for scaling).
};

/// Per-function lowering state.
class FuncLowering {
public:
  FuncLowering(const bc::Repo &R, bc::BlockCache &Blocks,
               const profile::ProfileStore *Store,
               const RegionDescriptor *Region, const LowerOptions &Opts,
               VasmUnit &Unit)
      : R(R), Blocks(Blocks), Store(Store), Region(Region), Opts(Opts),
        Unit(Unit) {}

  /// Emits all blocks of \p F into the unit.  \p InlineScale scales the
  /// tier-1 block weights (1.0 for the root function; call-site frequency
  /// estimate for inlined bodies).
  void emitFunction(bc::FuncId F, double InlineScale);

private:
  bool optimized() const { return Opts.Kind == TransKind::Optimized; }

  /// True when the dominant observed type at (F, Pc) covers the
  /// monomorphy threshold and equals \p Want (or \p Want is Null meaning
  /// "any dominant type").
  bool siteIsMono(bc::FuncId F, uint32_t Pc, runtime::Type Want) const;

  /// The statically-proven operand mask at (F, Pc), or 0 when unknown.
  uint8_t provenMask(bc::FuncId F, uint32_t Pc) const {
    if (!optimized() || !Opts.Facts)
      return 0;
    auto It =
        Opts.Facts->ProvenMasks.find(ProvenFacts::siteKey(F.raw(), Pc));
    return It == Opts.Facts->ProvenMasks.end() ? 0 : It->second;
  }

  /// True when the proven mask at (F, Pc) is non-empty and inside
  /// \p Bits: a type guard checking \p Bits could never fail, so the
  /// specialized lowering needs no guard at all.
  bool provenWithin(bc::FuncId F, uint32_t Pc, uint8_t Bits) const {
    uint8_t M = provenMask(F, Pc);
    return M != 0 && (M & ~Bits) == 0;
  }

  void recordTypeElision(bc::FuncId F, uint32_t Pc, uint8_t CheckedBits) {
    Unit.ElidedGuards.push_back(
        {ProvenFacts::siteKey(F.raw(), Pc),
         static_cast<uint8_t>(GuardProof::TypeProven), provenMask(F, Pc),
         CheckedBits});
  }

  /// The proven-call fact at (F, Pc) when it devirtualizes to exactly
  /// \p Target (the class guard protecting that direct call or inline
  /// body can never fail); nullptr otherwise.
  const ProvenFacts::CallFact *provenCall(bc::FuncId F, uint32_t Pc,
                                          bc::FuncId Target) const {
    if (!optimized() || !Opts.Facts)
      return nullptr;
    auto It =
        Opts.Facts->ProvenCalls.find(ProvenFacts::siteKey(F.raw(), Pc));
    if (It == Opts.Facts->ProvenCalls.end() ||
        It->second.Target != Target.raw())
      return nullptr;
    return &It->second;
  }

  void recordCallElision(bc::FuncId F, uint32_t Pc,
                         const ProvenFacts::CallFact &Fact) {
    Unit.ElidedGuards.push_back({ProvenFacts::siteKey(F.raw(), Pc),
                                 static_cast<uint8_t>(Fact.Proof),
                                 Fact.RecvCls, Fact.Target});
  }

  void lowerInstr(bc::FuncId F, uint32_t Pc, const bc::Instr &In,
                  VBlock &B);

  void emit(VBlock &B, VKind K, uint8_t Size) {
    B.Instrs.push_back(VInstr{K, Size});
  }

  const bc::Repo &R;
  bc::BlockCache &Blocks;
  const profile::ProfileStore *Store;
  const RegionDescriptor *Region;
  const LowerOptions &Opts;
  VasmUnit &Unit;
  std::vector<PendingInline> PendingInlines;
};

bool FuncLowering::siteIsMono(bc::FuncId F, uint32_t Pc,
                              runtime::Type Want) const {
  if (!optimized() || !Store)
    return false;
  const profile::FuncProfile *Prof = Store->find(F.raw());
  if (!Prof)
    return false;
  auto It = Prof->LoadTypes.find(Pc);
  if (It == Prof->LoadTypes.end())
    return false;
  if (!It->second.isMonomorphic(Opts.TypeMonoThreshold))
    return false;
  if (Want == runtime::Type::Null)
    return true;
  return It->second.dominant() == Want;
}

void FuncLowering::lowerInstr(bc::FuncId F, uint32_t Pc, const bc::Instr &In,
                              VBlock &B) {
  switch (In.Opcode) {
  case Op::Nop:
    return;
  case Op::Int:
  case Op::Dbl:
  case Op::True:
  case Op::False:
  case Op::Null:
    emit(B, VKind::Generic, 5);
    return;
  case Op::Str:
    if (Opts.SharedCodeConstraints) {
      // No absolute string address: load it from the indirection table.
      emit(B, VKind::Load, 4);
      emit(B, VKind::Call, 5);
      emit(B, VKind::Generic, 3);
      return;
    }
    emit(B, VKind::Call, 5);
    emit(B, VKind::Generic, 3);
    return;
  case Op::NewVec:
  case Op::NewDict:
    emit(B, VKind::Call, 5);
    emit(B, VKind::Generic, 3);
    return;
  case Op::NewObj:
    if (Opts.SharedCodeConstraints)
      emit(B, VKind::Load, 4); // class pointer via indirection table
    emit(B, VKind::Call, 5);
    emit(B, VKind::Generic, 3);
    return;
  case Op::AddElem:
    emit(B, VKind::Call, 5);
    emit(B, VKind::Store, 4);
    return;
  case Op::AddKeyElem:
    emit(B, VKind::Call, 5);
    emit(B, VKind::Store, 4);
    emit(B, VKind::Generic, 3);
    return;
  case Op::GetElem:
    if (provenWithin(F, Pc, typeMaskBit(runtime::Type::Vec))) {
      recordTypeElision(F, Pc, typeMaskBit(runtime::Type::Vec));
      emit(B, VKind::Generic, 3); // bounds check
      emit(B, VKind::Load, 4);
      return;
    }
    if (siteIsMono(F, Pc, runtime::Type::Vec)) {
      emit(B, VKind::Guard, 4);
      emit(B, VKind::Generic, 3); // bounds check
      emit(B, VKind::Load, 4);
      return;
    }
    emit(B, VKind::Call, 5);
    emit(B, VKind::Load, 4);
    emit(B, VKind::Generic, 3);
    return;
  case Op::SetElem:
    if (provenWithin(F, Pc, typeMaskBit(runtime::Type::Vec))) {
      recordTypeElision(F, Pc, typeMaskBit(runtime::Type::Vec));
      emit(B, VKind::Generic, 3);
      emit(B, VKind::Store, 4);
      return;
    }
    if (siteIsMono(F, Pc, runtime::Type::Vec)) {
      emit(B, VKind::Guard, 4);
      emit(B, VKind::Generic, 3);
      emit(B, VKind::Store, 4);
      return;
    }
    emit(B, VKind::Call, 5);
    emit(B, VKind::Store, 4);
    emit(B, VKind::Generic, 3);
    return;
  case Op::Len:
    emit(B, VKind::Call, 5);
    emit(B, VKind::Load, 4);
    return;
  case Op::PopC:
    emit(B, VKind::Generic, 2);
    return;
  case Op::Dup:
    emit(B, VKind::Generic, 3);
    return;
  case Op::GetL:
    if (optimized()) {
      emit(B, VKind::Generic, 3); // register-allocated
      return;
    }
    emit(B, VKind::Load, 4);
    return;
  case Op::SetL:
    if (optimized()) {
      emit(B, VKind::Generic, 3);
      return;
    }
    emit(B, VKind::Store, 4);
    return;
  case Op::Add:
  case Op::Sub:
  case Op::Mul:
  case Op::CmpEq:
  case Op::CmpNe:
  case Op::CmpLt:
  case Op::CmpLe:
  case Op::CmpGt:
  case Op::CmpGe: {
    constexpr uint8_t NumBits = typeMaskBit(runtime::Type::Int) |
                                typeMaskBit(runtime::Type::Dbl);
    if (provenWithin(F, Pc, NumBits)) {
      recordTypeElision(F, Pc, NumBits);
      emit(B, VKind::Generic, 3);
      return;
    }
    if (siteIsMono(F, Pc, runtime::Type::Int) ||
        siteIsMono(F, Pc, runtime::Type::Dbl)) {
      emit(B, VKind::Guard, 3);
      emit(B, VKind::Generic, 3);
      return;
    }
    emit(B, VKind::Call, 5);
    emit(B, VKind::Generic, 3);
    emit(B, VKind::Generic, 3);
    return;
  }
  case Op::Div:
  case Op::Mod:
    if (provenWithin(F, Pc, typeMaskBit(runtime::Type::Int))) {
      recordTypeElision(F, Pc, typeMaskBit(runtime::Type::Int));
      emit(B, VKind::Generic, 3); // zero check
      emit(B, VKind::Generic, 3);
      return;
    }
    if (siteIsMono(F, Pc, runtime::Type::Int)) {
      emit(B, VKind::Guard, 3);
      emit(B, VKind::Generic, 3); // zero check
      emit(B, VKind::Generic, 3);
      return;
    }
    emit(B, VKind::Call, 5);
    emit(B, VKind::Generic, 3);
    emit(B, VKind::Generic, 3);
    return;
  case Op::Concat:
    emit(B, VKind::Call, 5);
    emit(B, VKind::Generic, 3);
    return;
  case Op::Not:
    emit(B, VKind::Generic, 3);
    return;
  case Op::Jmp:
    emit(B, VKind::Jump, 5);
    return;
  case Op::JmpZ:
  case Op::JmpNZ:
    if (optimized()) {
      emit(B, VKind::Generic, 2);
      emit(B, VKind::CondBranch, 6);
      return;
    }
    emit(B, VKind::Call, 5); // toBool helper
    emit(B, VKind::CondBranch, 6);
    return;
  case Op::FCall: {
    if (Region && Region->inlinedCallee(F, Pc).valid()) {
      emit(B, VKind::Generic, 2); // frame elision marker
      return;
    }
    if (Opts.SharedCodeConstraints) {
      // The callee's address cannot be embedded; go through the
      // shared-code dispatch table.
      emit(B, VKind::Generic, 3);
      emit(B, VKind::Load, 4);
      emit(B, VKind::IndCall, 3);
      return;
    }
    emit(B, VKind::Generic, 3); // arg setup
    emit(B, VKind::Call, 5);
    return;
  }
  case Op::FCallObj: {
    if (Region && Region->inlinedCallee(F, Pc).valid()) {
      if (const ProvenFacts::CallFact *Fact =
              provenCall(F, Pc, Region->inlinedCallee(F, Pc))) {
        recordCallElision(F, Pc, *Fact);
        emit(B, VKind::Generic, 2);
        return;
      }
      emit(B, VKind::Guard, 4); // class guard protecting the inline
      emit(B, VKind::Generic, 2);
      return;
    }
    if (Region && Region->devirtTarget(F, Pc).valid()) {
      if (const ProvenFacts::CallFact *Fact =
              provenCall(F, Pc, Region->devirtTarget(F, Pc))) {
        recordCallElision(F, Pc, *Fact);
        emit(B, VKind::Call, 5);
        return;
      }
      emit(B, VKind::Guard, 4);
      emit(B, VKind::Call, 5);
      return;
    }
    emit(B, VKind::Load, 4); // class pointer
    emit(B, VKind::Load, 4); // method table entry
    emit(B, VKind::IndCall, 3);
    return;
  }
  case Op::NativeCall:
    emit(B, VKind::Generic, 3);
    emit(B, VKind::Call, 5);
    return;
  case Op::GetProp:
    if (siteIsMono(F, Pc, runtime::Type::Null)) { // any mono result type
      emit(B, VKind::Guard, 4);
      emit(B, VKind::Load, 4);
      return;
    }
    emit(B, VKind::Call, 5);
    emit(B, VKind::Load, 4);
    emit(B, VKind::Generic, 3);
    return;
  case Op::SetProp:
    if (optimized()) {
      emit(B, VKind::Guard, 4);
      emit(B, VKind::Store, 4);
      return;
    }
    emit(B, VKind::Call, 5);
    emit(B, VKind::Store, 4);
    emit(B, VKind::Generic, 3);
    return;
  case Op::GetThis:
    emit(B, VKind::Generic, 3);
    return;
  case Op::RetC:
    emit(B, VKind::Ret, 2);
    return;
  }
}

void FuncLowering::emitFunction(bc::FuncId F, double InlineScale) {
  const bc::Function &Func = R.func(F);
  const bc::BlockList &BL = Blocks.blocks(F);
  const profile::FuncProfile *Prof = Store ? Store->find(F.raw()) : nullptr;

  uint32_t Base = static_cast<uint32_t>(Unit.Blocks.size());
  bool HaveCounts = optimized() && Prof &&
                    Prof->BlockCounts.size() == BL.numBlocks();

  for (uint32_t BId = 0; BId < BL.numBlocks(); ++BId) {
    const bc::BcBlock &BcB = BL.block(BId);
    Unit.Blocks.emplace_back();
    VBlock &VB = Unit.Blocks.back();
    Unit.mapBlock(F, BId, Base + BId);

    // Instrumentation counters head the block: tier-1 translations always,
    // optimized translations only on seeders (paper section V-A).
    if (Opts.Kind == TransKind::Profile || Opts.SeederInstrumentation)
      emit(VB, VKind::Counter, 8);
    // Seeder-side function-entry counter for the tier-2 call graph
    // (paper section V-B): one extra counter in the entry block.
    if (Opts.SeederInstrumentation && BId == 0)
      emit(VB, VKind::Counter, 8);

    for (uint32_t Pc = BcB.Start; Pc < BcB.End; ++Pc) {
      lowerInstr(F, Pc, Func.Code[Pc], VB);
      // Profile translations are unoptimized: no register allocation, so
      // every bytecode spills around it (HHVM's tier-1 code is several
      // times larger than tier-2 output for the same bytecode).
      if (Opts.Kind == TransKind::Profile)
        emit(VB, VKind::Generic, 6);
    }
    // A block must have at least one instruction so it occupies space.
    if (VB.Instrs.empty())
      emit(VB, VKind::Generic, 2);

    if (BcB.hasTaken())
      VB.Taken = Base + BcB.Taken;
    if (BcB.hasFallthru())
      VB.Fallthru = Base + BcB.Fallthru;

    // Tier-1-derived weight, distorted and scaled (lossy on purpose).
    if (HaveCounts) {
      double Scaled =
          static_cast<double>(Prof->BlockCounts[BId]) * InlineScale;
      VB.Weight = distortWeight(static_cast<uint64_t>(Scaled), F.raw(),
                                Base + BId);
    }

    // Inlined call sites: record layout edges and recurse later (the
    // caller of emitFunction drives recursion via the region plan).
    if (Region) {
      for (uint32_t Pc = BcB.Start; Pc < BcB.End; ++Pc) {
        bc::FuncId Callee = Region->inlinedCallee(F, Pc);
        if (Callee.valid())
          PendingInlines.push_back({Base + BId, Callee, BId});
      }
    }
  }

  // Shared guard-exit stub for this function: a cold block guards side-exit
  // to.  Weight is a fixed guess (the tier-1 profile cannot see guard
  // failures; accurate Vasm counters replace this on consumers).
  if (optimized()) {
    Unit.Blocks.emplace_back();
    VBlock &Stub = Unit.Blocks.back();
    emit(Stub, VKind::Generic, 4);
    emit(Stub, VKind::Jump, 5);
    uint64_t EntryW = HaveCounts && !Prof->BlockCounts.empty()
                          ? Prof->BlockCounts[0]
                          : 0;
    Stub.Weight = EntryW / 10; // ~10% guessed side-exit rate
  }

  // Recurse into inlined callees now that this function's blocks exist.
  std::vector<PendingInline> Pending = std::move(PendingInlines);
  PendingInlines.clear();
  for (const PendingInline &PI : Pending) {
    uint32_t CalleeEntry = static_cast<uint32_t>(Unit.Blocks.size());
    Unit.CallEdges.push_back({PI.CallBlock, CalleeEntry});
    // Scale: fraction of callee entries attributable to this site.
    double Scale = InlineScale;
    const profile::FuncProfile *CalleeProf =
        Store ? Store->find(PI.Callee.raw()) : nullptr;
    const profile::FuncProfile *CallerProf =
        Store ? Store->find(F.raw()) : nullptr;
    if (CalleeProf && CallerProf && CalleeProf->EntryCount > 0 &&
        CallerProf->BlockCounts.size() == BL.numBlocks()) {
      double SiteCount =
          static_cast<double>(CallerProf->BlockCounts[PI.CallBcBlock]);
      Scale = SiteCount / static_cast<double>(CalleeProf->EntryCount);
      if (Scale > 1.0)
        Scale = 1.0;
    }
    emitFunction(PI.Callee, Scale);
  }
}

} // namespace

std::unique_ptr<VasmUnit>
jumpstart::jit::lowerFunction(const bc::Repo &R, bc::BlockCache &Blocks,
                              bc::FuncId Func,
                              const profile::ProfileStore *Store,
                              const RegionDescriptor *Region,
                              const LowerOptions &Opts) {
  auto Unit = std::make_unique<VasmUnit>();
  Unit->Func = Func;
  uint32_t Total = static_cast<uint32_t>(R.func(Func).Code.size());
  if (Region) {
    Unit->Inlined = Region->InlinedFuncs;
    for (bc::FuncId F : Region->InlinedFuncs)
      Total += static_cast<uint32_t>(R.func(F).Code.size());
  }
  Unit->BytecodeCount = Total;
  FuncLowering Lowering(R, Blocks, Store, Region, Opts, *Unit);
  Lowering.emitFunction(Func, /*InlineScale=*/1.0);
  return Unit;
}
