//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "jit/TransLayout.h"

#include "layout/ExtTsp.h"
#include "layout/HotCold.h"
#include "support/Assert.h"

#include <algorithm>
#include <numeric>

using namespace jumpstart;
using namespace jumpstart::jit;

namespace {

/// Builds a layout::Cfg mirroring the unit's blocks: successor links plus
/// inline call edges.  Edge weights are estimated as min(src, dst) block
/// weight -- the classic approximation when only block counters exist.
layout::Cfg buildLayoutCfg(const VasmUnit &Unit) {
  layout::Cfg G;
  for (const VBlock &B : Unit.Blocks)
    G.addBlock(B.sizeBytes(), B.Weight);
  auto EdgeWeight = [&](uint32_t Src, uint32_t Dst) {
    uint64_t WS = Unit.Blocks[Src].Weight;
    uint64_t WD = Unit.Blocks[Dst].Weight;
    uint64_t W = std::min(WS, WD);
    return W ? W : 1; // keep the graph connected for the solver
  };
  for (uint32_t B = 0; B < Unit.Blocks.size(); ++B) {
    const VBlock &VB = Unit.Blocks[B];
    if (VB.Taken != VBlock::kNoSucc)
      G.addEdge(B, VB.Taken, EdgeWeight(B, VB.Taken));
    if (VB.Fallthru != VBlock::kNoSucc)
      G.addEdge(B, VB.Fallthru, EdgeWeight(B, VB.Fallthru));
  }
  for (const VasmUnit::CallEdge &E : Unit.CallEdges)
    G.addEdge(E.Src, E.Dst, EdgeWeight(E.Src, E.Dst));
  return G;
}

} // namespace

UnitLayout jumpstart::jit::layoutUnit(const VasmUnit &Unit,
                                      const LayoutOptions &Opts) {
  UnitLayout Result;
  if (Unit.Blocks.empty())
    return Result;

  std::vector<uint32_t> Order;
  if (Opts.UseExtTsp) {
    layout::Cfg G = buildLayoutCfg(Unit);
    Order = layout::extTspOrder(G);
  } else {
    Order.resize(Unit.Blocks.size());
    std::iota(Order.begin(), Order.end(), 0u);
  }

  if (!Opts.SplitCold) {
    Result.HotOrder = std::move(Order);
    return Result;
  }
  layout::Cfg G = buildLayoutCfg(Unit);
  layout::HotColdSplit Split =
      layout::splitHotCold(G, Order, Opts.ColdRatio);
  Result.HotOrder = std::move(Split.Hot);
  Result.ColdOrder = std::move(Split.Cold);
  return Result;
}

void jumpstart::jit::injectVasmCounts(VasmUnit &Unit,
                                      const std::vector<uint64_t> &Counts) {
  size_t N = std::min(Unit.Blocks.size(), Counts.size());
  for (size_t I = 0; I < N; ++I)
    Unit.Blocks[I].Weight = Counts[I];
}

bool jumpstart::jit::placeTranslation(Translation &T, CodeCache &Cache,
                                      CodeArea HotArea,
                                      const UnitLayout &Layout) {
  const VasmUnit &Unit = *T.Unit;

  // Jump elision: a block ending in an unconditional jump whose target is
  // placed immediately after it drops the jump entirely.
  T.JumpElided.assign(Unit.Blocks.size(), false);
  auto MarkElisions = [&](const std::vector<uint32_t> &Order) {
    for (size_t I = 0; I + 1 < Order.size(); ++I) {
      const VBlock &B = Unit.Blocks[Order[I]];
      if (!B.Instrs.empty() && B.Instrs.back().Kind == VKind::Jump &&
          B.Taken == Order[I + 1])
        T.JumpElided[Order[I]] = true;
    }
  };
  MarkElisions(Layout.HotOrder);
  MarkElisions(Layout.ColdOrder);

  auto EffectiveSize = [&](uint32_t B) -> uint64_t {
    uint64_t Size = Unit.Blocks[B].sizeBytes();
    if (T.JumpElided[B])
      Size -= Unit.Blocks[B].Instrs.back().SizeBytes;
    return Size;
  };

  uint64_t HotBytes = 0;
  for (uint32_t B : Layout.HotOrder)
    HotBytes += EffectiveSize(B);
  uint64_t ColdBytes = 0;
  for (uint32_t B : Layout.ColdOrder)
    ColdBytes += EffectiveSize(B);

  uint64_t HotBase = Cache.allocate(HotArea, HotBytes);
  if (HotBase == 0)
    return false;
  uint64_t ColdBase = 0;
  if (ColdBytes) {
    ColdBase = Cache.allocate(CodeArea::Cold, ColdBytes);
    if (ColdBase == 0)
      return false;
  }

  T.BlockAddrs.assign(Unit.Blocks.size(), 0);
  uint64_t Cursor = HotBase;
  for (uint32_t B : Layout.HotOrder) {
    T.BlockAddrs[B] = Cursor;
    Cursor += EffectiveSize(B);
  }
  Cursor = ColdBase;
  for (uint32_t B : Layout.ColdOrder) {
    T.BlockAddrs[B] = Cursor;
    Cursor += EffectiveSize(B);
  }
  // Layout must have covered every block exactly once.
  alwaysAssert(Layout.HotOrder.size() + Layout.ColdOrder.size() ==
                   Unit.Blocks.size(),
               "layout does not cover all blocks");
  T.Placed = true;
  return true;
}

layout::CallGraph
jumpstart::jit::buildTier1CallGraph(const bc::Repo &R, bc::BlockCache &Blocks,
                                    const profile::ProfileStore &Store) {
  layout::CallGraph G;
  for (const auto &[FuncRaw, Prof] : Store.all()) {
    const bc::Function &F = R.func(bc::FuncId(FuncRaw));
    // Node size approximates the optimized translation: ~3 bytes per
    // bytecode (the actual size is unknown until tier-2 runs).
    G.setNode(FuncRaw, static_cast<uint32_t>(F.Code.size() * 3 + 16),
              Prof.totalSamples());
    const bc::BlockList &BL = Blocks.blocks(bc::FuncId(FuncRaw));
    bool HaveCounts = Prof.BlockCounts.size() == BL.numBlocks();
    // Direct call sites, weighted by the enclosing block's count.
    for (uint32_t Pc = 0; Pc < F.Code.size(); ++Pc) {
      const bc::Instr &In = F.Code[Pc];
      if (In.Opcode == bc::Op::FCall) {
        uint64_t W =
            HaveCounts ? Prof.BlockCounts[BL.blockOf(Pc)] : 1;
        if (W)
          G.addArc(FuncRaw, In.funcImm().raw(), W);
      }
    }
    // Virtual sites from the call-target profiles.
    for (const auto &[Pc, Targets] : Prof.CallTargets) {
      (void)Pc;
      for (const auto &[Callee, Count] : Targets)
        if (Count)
          G.addArc(FuncRaw, Callee, Count);
    }
  }
  return G;
}

layout::CallGraph
jumpstart::jit::buildTier2CallGraph(const bc::Repo &R,
                                    const profile::OptProfile &Opt,
                                    const profile::ProfileStore &Store) {
  layout::CallGraph G;
  for (const auto &[Arc, Count] : Opt.CallArcs) {
    if (Count)
      G.addArc(Arc.first, Arc.second, Count);
  }
  // Node attributes still come from tier-1 hotness and sizes.
  for (const auto &[FuncRaw, Prof] : Store.all()) {
    const bc::Function &F = R.func(bc::FuncId(FuncRaw));
    G.setNode(FuncRaw, static_cast<uint32_t>(F.Code.size() * 3 + 16),
              Prof.totalSamples());
  }
  return G;
}
