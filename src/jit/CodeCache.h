//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated code cache: the address space JITed code is placed into.
///
/// Mirrors HHVM's area split: a *hot* area (optimized code, placed in
/// function-sorted order), a *cold* area (split-off cold blocks), a
/// *profile* area (tier-1 translations, discarded after retranslate-all)
/// and a *live* area (tracelet translations).  Allocation is bump-pointer;
/// when the live area fills up the JIT stops translating new code, which
/// is point "D" of the paper's Figure 1.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_JIT_CODECACHE_H
#define JUMPSTART_JIT_CODECACHE_H

#include <cstdint>

namespace jumpstart::jit {

/// Identifies one area of the code cache.
enum class CodeArea : uint8_t {
  Hot,     ///< Optimized translations (paper: "main").
  Cold,    ///< Cold-split blocks of optimized translations.
  Profile, ///< Tier-1 profiling translations.
  Live,    ///< Tracelet translations.
};

/// Code cache sizing (simulated bytes).  Defaults are scaled-down
/// proportions of HHVM's production configuration.
struct CodeCacheConfig {
  uint64_t HotBytes = 48ull << 20;
  uint64_t ColdBytes = 48ull << 20;
  uint64_t ProfileBytes = 32ull << 20;
  uint64_t LiveBytes = 16ull << 20;
};

/// The bump-allocating, relocatable address space.
class CodeCache {
public:
  explicit CodeCache(CodeCacheConfig Config = CodeCacheConfig());

  /// Allocates \p Bytes in \p Area.  \returns the base address, or 0 when
  /// the area is full (the caller must treat 0 as "stop JITing").
  uint64_t allocate(CodeArea Area, uint64_t Bytes);

  /// Bytes used in \p Area.
  uint64_t used(CodeArea Area) const;

  /// Bytes available in \p Area.
  uint64_t capacity(CodeArea Area) const;

  bool isFull(CodeArea Area) const { return used(Area) >= capacity(Area); }

  /// Total bytes of code across all areas (Figure 1's y-axis).
  uint64_t totalUsed() const;

  /// Resets the hot and cold areas so optimized code can be re-placed
  /// (the relocation step between points B and C of Figure 1 re-places
  /// translations from scratch in the function-sorted order).
  void resetHotCold();

  /// Base address of \p Area (areas are disjoint, hot first).
  uint64_t base(CodeArea Area) const;

private:
  CodeCacheConfig Config;
  uint64_t Used[4] = {0, 0, 0, 0};
};

} // namespace jumpstart::jit

#endif // JUMPSTART_JIT_CODECACHE_H
