//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "jit/TransSnapshot.h"

#include "jit/Jit.h"

namespace jumpstart::jit {

std::unique_ptr<const TransSnapshot> TransSnapshot::capture(const Jit &J,
                                                            uint64_t Version) {
  auto S = std::make_unique<TransSnapshot>();
  S->Version = Version;
  S->Phase = J.phase();
  const bc::Repo &R = J.repo();
  S->CostPerBytecode.resize(R.numFuncs());
  for (size_t I = 0; I < R.numFuncs(); ++I) {
    bc::FuncId F(static_cast<uint32_t>(I));
    S->CostPerBytecode[I] = J.execCostPerBytecode(F);
    if (J.currentTranslation(F))
      ++S->Translations;
  }
  return S;
}

void SnapshotPublisher::publish(std::unique_ptr<const TransSnapshot> Next) {
  const TransSnapshot *Raw = Next.release();
  const TransSnapshot *Old = Cur.exchange(Raw, std::memory_order_acq_rel);
  Published.fetch_add(1, std::memory_order_relaxed);
  if (Old)
    Domain.retire([Old] { delete Old; });
  // Opportunistic: each publication tries to drain snapshots retired by
  // earlier ones.  endConcurrentServing() does the final reclaimAll().
  Domain.tryReclaim();
}

} // namespace jumpstart::jit
