//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "jit/VasmTracer.h"

using namespace jumpstart;
using namespace jumpstart::jit;

/// Simulated address range of the interpreter's dispatch loop.  The
/// interpreter itself is compact, hot native code; interpreted bytecode
/// execution fetches from this small region (poor per-bytecode efficiency
/// comes from executing many dispatch instructions, not from fetch
/// misses).
static constexpr uint64_t kInterpBase = 0x08000000ull;
static constexpr uint64_t kInterpSize = 16 * 1024;

VasmTracer::VasmTracer(Jit &J, sim::MachineSim &Machine)
    : J(J), Machine(Machine) {}

void VasmTracer::onFuncEnter(bc::FuncId Callee, bc::FuncId Caller,
                             const runtime::Value *Args, uint32_t NumArgs) {
  (void)Caller;
  (void)Args;
  (void)NumArgs;
  Frame F;
  F.Func = Callee.raw();
  Frame *Parent = top();
  if (Parent && Parent->Unit && Parent->Unit->isInlined(Callee)) {
    // Inlined body: tracing continues within the caller's unit.
    F.Trans = Parent->Trans;
    F.Unit = Parent->Unit;
    F.Inlined = true;
  } else {
    const Translation *T = J.transDb().best(Callee);
    if (T && T->Placed) {
      F.Trans = T;
      F.Unit = T->Unit.get();
    }
  }
  Frames.push_back(F);
}

void VasmTracer::onFuncExit(bc::FuncId F) {
  (void)F;
  if (!Frames.empty())
    Frames.pop_back();
}

uint64_t VasmTracer::terminatorAddr(const Frame &F,
                                    uint32_t VasmBlock) const {
  const VBlock &B = F.Unit->Blocks[VasmBlock];
  uint64_t Addr = F.Trans->BlockAddrs[VasmBlock];
  for (size_t I = 0; I + 1 < B.Instrs.size(); ++I)
    Addr += B.Instrs[I].SizeBytes;
  return Addr;
}

void VasmTracer::traceBlock(const Frame &F, uint32_t VasmBlock) {
  uint64_t Addr = F.Trans->BlockAddrs[VasmBlock];
  const std::vector<VInstr> &Instrs = F.Unit->Blocks[VasmBlock].Instrs;
  size_t Count = Instrs.size();
  // A jump elided at placement does not exist in the code stream.
  if (Count && VasmBlock < F.Trans->JumpElided.size() &&
      F.Trans->JumpElided[VasmBlock])
    --Count;
  for (size_t I = 0; I < Count; ++I) {
    Machine.fetch(Addr, Instrs[I].SizeBytes);
    Addr += Instrs[I].SizeBytes;
  }
}

void VasmTracer::onBlockEnter(bc::FuncId FuncId, uint32_t Block) {
  Frame *F = top();
  if (!F || !F->Unit || !F->Trans || !F->Trans->Placed)
    return;
  uint32_t VB = F->Unit->findBlock(bc::FuncId(F->Func), Block);
  if (F->Func != FuncId.raw()) {
    // Events for a function other than the frame's own can only happen
    // for inlined bodies, which register under their own FuncId.
    VB = F->Unit->findBlock(FuncId, Block);
  }
  if (VB == VasmUnit::kNoBlock)
    return;

  // Resolve the previous block's conditional branch now that we know
  // where control actually went.  "Taken" is a *layout* property: the
  // branch falls through when the next executed block is placed
  // physically adjacent; any other placement makes this a taken branch.
  // This is exactly the lever Ext-TSP block layout pulls (paper section
  // V-A): laying the hot successor next to the block converts its taken
  // branches into fallthroughs.
  if (F->LastVasmBlock != VasmUnit::kNoBlock) {
    const VBlock &Last = F->Unit->Blocks[F->LastVasmBlock];
    if (!Last.Instrs.empty() &&
        Last.Instrs.back().Kind == VKind::CondBranch) {
      uint64_t LastEnd = F->Trans->BlockAddrs[F->LastVasmBlock] +
                         Last.sizeBytes();
      uint64_t NextAddr = F->Trans->BlockAddrs[VB];
      bool Taken = NextAddr != LastEnd;
      Machine.condBranch(terminatorAddr(*F, F->LastVasmBlock), Taken,
                         NextAddr);
    }
  }

  traceBlock(*F, VB);
  F->LastVasmBlock = VB;
}

bool VasmTracer::wantsInstrTrace(bc::FuncId F) {
  // Per-instruction events are only needed for interpreted functions, to
  // model the dispatch loop's footprint.
  const Translation *T = J.transDb().best(F);
  return !(T && T->Placed);
}

void VasmTracer::onInstr(bc::FuncId F, uint32_t InstrIndex, uint32_t Depth) {
  (void)F;
  (void)InstrIndex;
  (void)Depth;
  // One interpreted bytecode: several dispatch-loop instructions.  Model
  // as three fetches walking a small hot region.
  for (int I = 0; I < 3; ++I) {
    Machine.fetch(kInterpBase + (InterpCursor % kInterpSize), 12);
    InterpCursor += 64;
  }
}

void VasmTracer::onVirtualCall(bc::FuncId Caller, uint32_t InstrIndex,
                               bc::FuncId Callee) {
  (void)Caller;
  (void)InstrIndex;
  Frame *F = top();
  if (!F || !F->Unit || !F->Trans)
    return;
  // Devirtualized or inlined sites compile to guarded direct calls; only
  // genuinely indirect sites stress the target predictor.
  if (F->Unit->isInlined(Callee))
    return;
  uint64_t Target = 0;
  const Translation *T = J.transDb().best(Callee);
  if (T && T->Placed)
    Target = T->entryAddr();
  uint64_t Pc = F->LastVasmBlock != VasmUnit::kNoBlock
                    ? terminatorAddr(*F, F->LastVasmBlock)
                    : 0;
  Machine.indirectBranch(Pc, Target);
}

void VasmTracer::onPropAccess(bc::ClassId Cls, bc::StringId Prop,
                              bool IsWrite, uint64_t Addr) {
  (void)Cls;
  (void)Prop;
  Machine.dataAccess(Addr, IsWrite);
}

void VasmTracer::onDataAccess(uint64_t Addr, bool IsWrite) {
  Machine.dataAccess(Addr, IsWrite);
}
