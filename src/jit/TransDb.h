//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-server translation database: every translation the JIT has
/// produced, indexed by function and kind.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_JIT_TRANSDB_H
#define JUMPSTART_JIT_TRANSDB_H

#include "jit/Translation.h"
#include "support/FlatMap.h"

#include <memory>
#include <string>
#include <vector>

namespace jumpstart::jit {

/// Owns all translations of one server's JIT.
class TransDb {
public:
  /// Creates a translation from \p Unit; it starts unplaced.
  Translation &create(TransKind Kind, std::unique_ptr<VasmUnit> Unit);

  Translation *find(uint32_t Id) {
    return Id < All.size() ? All[Id].get() : nullptr;
  }

  /// Current translation of \p F with kind \p K, or nullptr.
  Translation *forFunc(bc::FuncId F, TransKind K);
  const Translation *forFunc(bc::FuncId F, TransKind K) const;

  /// The translation that would execute for \p F right now: a placed
  /// optimized translation wins, then live, then profile.
  const Translation *best(bc::FuncId F) const;

  size_t size() const { return All.size(); }
  const std::vector<std::unique_ptr<Translation>> &all() const {
    return All;
  }

  /// Total Vasm bytes of translations of kind \p K (placed or not).
  uint64_t bytesOfKind(TransKind K) const;

  /// One line per translation in id order (kind, function, placement,
  /// entry address, block count).  Part of the determinism promise: two
  /// runs of the same schedule must produce byte-identical digests
  /// regardless of host compile-pool width; the conformance oracle
  /// (src/testing) asserts exactly that.
  std::string placementDigest() const;

private:
  /// FuncId -> translation id, one per kind.  Read-heavy after
  /// retranslate-all (every request probes best()), hence flat sorted
  /// vectors rather than hash maps; see support/FlatMap.h.
  using FuncMap = support::FlatMap<uint32_t, uint32_t>;
  FuncMap &mapFor(TransKind K);
  const FuncMap &mapFor(TransKind K) const;

  std::vector<std::unique_ptr<Translation>> All;
  FuncMap LiveMap;
  FuncMap ProfileMap;
  FuncMap OptMap;
};

} // namespace jumpstart::jit

#endif // JUMPSTART_JIT_TRANSDB_H
