//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-server translation database: every translation the JIT has
/// produced, indexed by function and kind.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_JIT_TRANSDB_H
#define JUMPSTART_JIT_TRANSDB_H

#include "jit/Translation.h"
#include "support/FlatMap.h"
#include "support/ThreadSafety.h"

#include <memory>
#include <string>
#include <vector>

namespace jumpstart::jit {

/// Owns all translations of one server's JIT.
///
/// Locking: the index structures (id vector, per-kind function maps,
/// the elided-guard counter) are guarded by an internal mutex so the
/// -Wthread-safety build checks every access.  The lock is uncontended
/// by construction today -- parallel retranslate-all workers lower into
/// private scratch slots and only the owning server's thread installs
/// results (see jit/ParallelRetranslate.cpp) -- so it costs one
/// uncontended acquire per lookup and buys a compiler-checked invariant
/// instead of a comment.  Translation *payloads* (Placed, BlockAddrs,
/// profile counters) stay single-writer by that same construction and
/// are deliberately not guarded: handing out a Translation* under a lock
/// that does not cover the pointee would be a false promise.
class TransDb {
public:
  /// Creates a translation from \p Unit; it starts unplaced.
  Translation &create(TransKind Kind, std::unique_ptr<VasmUnit> Unit)
      JUMPSTART_EXCLUDES(M);

  Translation *find(uint32_t Id) JUMPSTART_EXCLUDES(M) {
    support::MutexLock Lock(M);
    return Id < All.size() ? All[Id].get() : nullptr;
  }

  /// Current translation of \p F with kind \p K, or nullptr.
  Translation *forFunc(bc::FuncId F, TransKind K) JUMPSTART_EXCLUDES(M);
  const Translation *forFunc(bc::FuncId F, TransKind K) const
      JUMPSTART_EXCLUDES(M);

  /// The translation that would execute for \p F right now: a placed
  /// optimized translation wins, then live, then profile.
  const Translation *best(bc::FuncId F) const JUMPSTART_EXCLUDES(M);

  size_t size() const JUMPSTART_EXCLUDES(M) {
    support::MutexLock Lock(M);
    return All.size();
  }

  /// The full translation list, for serial post-run inspection (lint,
  /// digests, tests).  The returned reference escapes the lock; callers
  /// must not race it against create().
  const std::vector<std::unique_ptr<Translation>> &all() const
      JUMPSTART_EXCLUDES(M) {
    support::MutexLock Lock(M);
    return All;
  }

  /// Total analysis-proven guard elisions across installed translations
  /// (sum of VasmUnit::ElidedGuards, accumulated in create).
  uint64_t guardsElided() const JUMPSTART_EXCLUDES(M) {
    support::MutexLock Lock(M);
    return ElidedGuardCount;
  }

  /// Total Vasm bytes of translations of kind \p K (placed or not).
  uint64_t bytesOfKind(TransKind K) const JUMPSTART_EXCLUDES(M);

  /// One line per translation in id order (kind, function, placement,
  /// entry address, block count).  Part of the determinism promise: two
  /// runs of the same schedule must produce byte-identical digests
  /// regardless of host compile-pool width; the conformance oracle
  /// (src/testing) asserts exactly that.
  std::string placementDigest() const JUMPSTART_EXCLUDES(M);

private:
  /// FuncId -> translation id, one per kind.  Read-heavy after
  /// retranslate-all (every request probes best()), hence flat sorted
  /// vectors rather than hash maps; see support/FlatMap.h.
  using FuncMap = support::FlatMap<uint32_t, uint32_t>;
  FuncMap &mapFor(TransKind K) JUMPSTART_REQUIRES(M);
  const FuncMap &mapFor(TransKind K) const JUMPSTART_REQUIRES(M);

  Translation *forFuncLocked(bc::FuncId F, TransKind K) const
      JUMPSTART_REQUIRES(M);

  mutable support::Mutex M;
  std::vector<std::unique_ptr<Translation>> All JUMPSTART_GUARDED_BY(M);
  FuncMap LiveMap JUMPSTART_GUARDED_BY(M);
  FuncMap ProfileMap JUMPSTART_GUARDED_BY(M);
  FuncMap OptMap JUMPSTART_GUARDED_BY(M);
  uint64_t ElidedGuardCount JUMPSTART_GUARDED_BY(M) = 0;
};

} // namespace jumpstart::jit

#endif // JUMPSTART_JIT_TRANSDB_H
