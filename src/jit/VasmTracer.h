//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Vasm shadow tracer: "executes" the laid-out machine code.
///
/// While the interpreter runs a request semantically, the tracer follows
/// the placed Vasm blocks of the translations each function executes in,
/// feeding the machine simulator: instruction fetches at the blocks'
/// placed addresses, conditional-branch outcomes (resolved by observing
/// which block executes next), indirect-call targets for virtual dispatch,
/// and the actual data addresses of property and container accesses.
///
/// This is how every layout decision -- Ext-TSP block order, hot/cold
/// placement, the function order in the code cache, property slot
/// assignment -- becomes visible to the caches, TLBs and branch predictors
/// of Figure 5.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_JIT_VASMTRACER_H
#define JUMPSTART_JIT_VASMTRACER_H

#include "interp/ExecCallbacks.h"
#include "jit/Jit.h"
#include "sim/Machine.h"

#include <vector>

namespace jumpstart::jit {

/// Attach to the interpreter during steady-state measurement runs.
class VasmTracer : public interp::ExecCallbacks {
public:
  VasmTracer(Jit &J, sim::MachineSim &Machine);

  void onFuncEnter(bc::FuncId Callee, bc::FuncId Caller,
                   const runtime::Value *Args, uint32_t NumArgs) override;
  void onFuncExit(bc::FuncId F) override;
  void onBlockEnter(bc::FuncId F, uint32_t Block) override;
  bool wantsInstrTrace(bc::FuncId F) override;
  void onInstr(bc::FuncId F, uint32_t InstrIndex, uint32_t Depth) override;
  void onVirtualCall(bc::FuncId Caller, uint32_t InstrIndex,
                     bc::FuncId Callee) override;
  void onPropAccess(bc::ClassId Cls, bc::StringId Prop, bool IsWrite,
                    uint64_t Addr) override;
  void onDataAccess(uint64_t Addr, bool IsWrite) override;

private:
  struct Frame {
    uint32_t Func = 0;
    /// The translation whose blocks this frame traces (null: interpreted).
    const Translation *Trans = nullptr;
    const VasmUnit *Unit = nullptr;
    /// Whether Unit belongs to a caller that inlined this function.
    bool Inlined = false;
    /// Previously traced Vasm block (to resolve branch outcomes).
    uint32_t LastVasmBlock = VasmUnit::kNoBlock;
  };

  Frame *top() { return Frames.empty() ? nullptr : &Frames.back(); }
  void traceBlock(const Frame &F, uint32_t VasmBlock);
  uint64_t terminatorAddr(const Frame &F, uint32_t VasmBlock) const;

  Jit &J;
  sim::MachineSim &Machine;
  std::vector<Frame> Frames;
  /// Round-robin cursor for interpreter-loop fetches.
  uint64_t InterpCursor = 0;
};

} // namespace jumpstart::jit

#endif // JUMPSTART_JIT_VASMTRACER_H
