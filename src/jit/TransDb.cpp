//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "jit/TransDb.h"

#include "support/Assert.h"
#include "support/StringUtil.h"

using namespace jumpstart;
using namespace jumpstart::jit;

TransDb::FuncMap &TransDb::mapFor(TransKind K) {
  switch (K) {
  case TransKind::Live:
    return LiveMap;
  case TransKind::Profile:
    return ProfileMap;
  case TransKind::Optimized:
    return OptMap;
  }
  unreachable("unhandled TransKind");
}

const TransDb::FuncMap &TransDb::mapFor(TransKind K) const {
  return const_cast<TransDb *>(this)->mapFor(K);
}

Translation &TransDb::create(TransKind Kind,
                             std::unique_ptr<VasmUnit> Unit) {
  auto T = std::make_unique<Translation>();
  T->Kind = Kind;
  T->Unit = std::move(Unit);
  // Execution cost: cost units per bytecode covered.  Calls model helper
  // overhead; everything else retires in about a unit.
  uint64_t Cost = 0;
  for (const VBlock &B : T->Unit->Blocks) {
    for (const VInstr &I : B.Instrs) {
      switch (I.Kind) {
      case VKind::Call:
      case VKind::IndCall:
        Cost += 4;
        break;
      case VKind::Counter:
        Cost += 2;
        break;
      default:
        Cost += 1;
        break;
      }
    }
  }
  T->CostPerBytecode =
      T->Unit->BytecodeCount
          ? static_cast<double>(Cost) /
                static_cast<double>(T->Unit->BytecodeCount)
          : 1.0;
  support::MutexLock Lock(M);
  T->Id = static_cast<uint32_t>(All.size());
  ElidedGuardCount += T->Unit->ElidedGuards.size();
  mapFor(Kind).insertOrAssign(T->Unit->Func.raw(), T->Id);
  All.push_back(std::move(T));
  return *All.back();
}

Translation *TransDb::forFuncLocked(bc::FuncId F, TransKind K) const {
  const uint32_t *Id = mapFor(K).find(F.raw());
  return Id ? All[*Id].get() : nullptr;
}

Translation *TransDb::forFunc(bc::FuncId F, TransKind K) {
  support::MutexLock Lock(M);
  return forFuncLocked(F, K);
}

const Translation *TransDb::forFunc(bc::FuncId F, TransKind K) const {
  support::MutexLock Lock(M);
  return forFuncLocked(F, K);
}

const Translation *TransDb::best(bc::FuncId F) const {
  support::MutexLock Lock(M);
  const Translation *Opt = forFuncLocked(F, TransKind::Optimized);
  if (Opt && Opt->Placed)
    return Opt;
  const Translation *Live = forFuncLocked(F, TransKind::Live);
  if (Live && Live->Placed)
    return Live;
  const Translation *Prof = forFuncLocked(F, TransKind::Profile);
  if (Prof && Prof->Placed)
    return Prof;
  return nullptr;
}

uint64_t TransDb::bytesOfKind(TransKind K) const {
  support::MutexLock Lock(M);
  uint64_t Total = 0;
  for (const auto &T : All)
    if (T->Kind == K)
      Total += T->Unit->sizeBytes();
  return Total;
}

std::string TransDb::placementDigest() const {
  support::MutexLock Lock(M);
  std::string Out;
  for (const auto &T : All)
    Out += strFormat("t%u %s f%u placed=%d entry=%llu blocks=%zu\n",
                     T->Id, transKindName(T->Kind), T->func().raw(),
                     T->Placed ? 1 : 0,
                     static_cast<unsigned long long>(T->entryAddr()),
                     T->BlockAddrs.size());
  return Out;
}
