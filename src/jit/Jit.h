//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JIT controller: tiering policy, the retranslate-all pipeline, and
/// the Jump-Start consumer precompile path.
///
/// The controller reproduces the lifecycle behind the paper's Figure 1:
///
///   Profiling   -- requests run profiling translations; tier-1 data
///                  accumulates.  Ends after ProfileRequestTarget requests
///                  (point "A").
///   Optimizing  -- retranslate-all: every profiled function is compiled
///                  in optimized mode into temporary buffers (A..B).
///   Relocating  -- optimized translations are placed into the code cache
///                  in the function-sorted order (B..C).
///   Mature      -- all optimized code reachable; new code gets live
///                  translations until the live area fills (C..D).
///
/// A Jump-Start consumer skips Profiling entirely: it loads the package,
/// runs Optimizing and Relocating with all cores before serving (paper
/// Figure 3c).
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_JIT_JIT_H
#define JUMPSTART_JIT_JIT_H

#include "bytecode/BlockCache.h"
#include "bytecode/Repo.h"
#include "jit/CodeCache.h"
#include "jit/Lower.h"
#include "jit/Region.h"
#include "jit/TransDb.h"
#include "jit/TransLayout.h"
#include "profile/ProfilePackage.h"
#include "profile/ProfileStore.h"
#include "support/Status.h"

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace jumpstart::obs {
struct Observability;
}

namespace jumpstart::jit {

/// All JIT tunables.  Field-by-field these correspond to HHVM runtime
/// options; the Jump-Start flags map to the optimizations of paper
/// section V.
struct JitConfig {
  CodeCacheConfig Cache;
  RegionParams Region;
  double TypeMonoThreshold = 0.95;

  /// Requests executed with profiling before retranslate-all fires
  /// (HHVM's ProfileRequests; point "A" of Figure 1).
  uint64_t ProfileRequestTarget = 300;

  /// Cores the *virtual* cost model assumes retranslate-all runs on
  /// (paper Figure 3c: the consumer optimizes "with all cores before
  /// serving").  0 means all of the server's cores; a positive value is
  /// clamped to the core count.  Compile wall-cost is charged as
  /// work/parallelism.  Distinct from host threading (`--threads`, the
  /// support::ThreadPool), which never changes virtual time.
  uint32_t Parallelism = 0;

  // Cost model (cost units; 1 unit ~ 1 simulated cycle).
  double InterpCostPerBytecode = 25.0;
  double ProfileCompileCostPerBytecode = 40.0;
  double LiveCompileCostPerBytecode = 30.0;
  double OptCompileCostPerBytecode = 400.0;
  double RelocateCostPerByte = 0.15;

  // Code-layout optimizations.
  bool UseExtTsp = true;
  bool SplitHotCold = true;
  /// Place optimized translations in C3 order (otherwise compile order).
  bool UseFunctionSort = true;

  /// ShareJIT comparison mode (paper section III): consumers adopt the
  /// seeder's machine code directly.  Compilation degrades to cheap
  /// relocation/patching, but the code must be compiled under sharing
  /// constraints (no inlining, no embedded absolute addresses), which
  /// costs steady-state performance -- the trade-off that made HHVM
  /// choose profile sharing instead.
  bool ShareJitMode = false;

  // Jump-Start-specific behaviour.
  /// Instrument optimized code with Vasm block and entry counters (run on
  /// seeders; paper sections V-A and V-B).
  bool SeederInstrumentation = false;
  /// Consume the package's accurate Vasm block counters for layout
  /// (section V-A optimization).
  bool UseVasmCounters = true;
  /// Consume the package's precomputed function order (section V-B /
  /// category 4).
  bool UsePackageFuncOrder = true;
  /// Also pre-compile the package's live-function list before serving
  /// (the section IV-A alternative HHVM decided against: it removes the
  /// post-start tracelet tail at the cost of longer consumer init and a
  /// much longer seeder collection window).
  bool PrecompileLiveCode = false;

  /// Act on the whole-program analysis facts below: elide guards the
  /// analysis proved redundant, devirtualize proven-monomorphic virtual
  /// sites without waiting for profile dominance, and let the harness
  /// pre-seed interpreter inline caches.  Off by default -- the
  /// DiffRunner ablation matrix compares both settings.
  bool ProvenGuardElision = false;
  /// The facts themselves (analysis::WholeProgram::jitFacts()).  Shared
  /// ownership: copied configs (server/consumer/harness) keep the facts
  /// alive for as long as any JIT consults them.
  std::shared_ptr<const ProvenFacts> Facts;
};

/// Lifecycle phase (see file header).
enum class JitPhase : uint8_t {
  Profiling,
  Optimizing,
  Relocating,
  Mature,
};

const char *jitPhaseName(JitPhase P);

/// One server's JIT.
class Jit {
public:
  Jit(const bc::Repo &R, JitConfig Config = JitConfig());

  //===--------------------------------------------------------------------===
  // Queries.
  //===--------------------------------------------------------------------===

  JitPhase phase() const { return Phase; }

  const bc::Repo &repo() const { return R; }

  /// Execution cost (cost units per bytecode) of running \p F right now.
  double execCostPerBytecode(bc::FuncId F) const;

  /// The translation \p F currently executes, or nullptr (interpreter).
  const Translation *currentTranslation(bc::FuncId F) const {
    return Db.best(F);
  }

  const TransDb &transDb() const { return Db; }
  TransDb &transDbMutable() { return Db; }
  CodeCache &codeCache() { return Cache; }
  bc::BlockCache &blockCache() { return Blocks; }
  profile::ProfileStore &profileStore() { return Store; }
  const profile::ProfileStore &profileStore() const { return Store; }
  /// Seeder-side optimized-code profile (section V data).
  profile::OptProfile &optProfile() { return OptProf; }
  /// Property-access counters ("Class::prop" -> count; section V-C).
  std::unordered_map<std::string, uint64_t> &propCounts() {
    return PropCounts;
  }
  /// Property-affinity counters ("Class::a::b" -> count; the section V-C
  /// future-work extension).
  std::unordered_map<std::string, uint64_t> &propAffinity() {
    return PropAffinity;
  }
  const JitConfig &config() const { return Config; }

  /// Total bytes of JITed code produced so far (Figure 1's y-axis):
  /// profile + live + optimized, whether placed or still in temporary
  /// buffers.
  uint64_t totalCodeBytes() const;

  /// Guards the whole-program analysis let optimized lowering skip so
  /// far (sum of VasmUnit::ElidedGuards over installed translations).
  uint64_t guardsElided() const { return Db.guardsElided(); }

  /// True when the JIT has stopped producing code (live area full or no
  /// pending work and nothing new arriving) -- Figure 1's point "D" is
  /// when this first holds in Mature phase with a full live area.
  bool liveAreaFull() const {
    return Cache.isFull(CodeArea::Live);
  }

  //===--------------------------------------------------------------------===
  // Events from the VM server.
  //===--------------------------------------------------------------------===

  /// A request entered \p F; may enqueue compile jobs per tiering policy.
  void onFuncEntered(bc::FuncId F);

  /// A request finished; advances the profiling window.
  void onRequestFinished();

  /// Force the start of retranslate-all (also fired automatically by
  /// onRequestFinished reaching ProfileRequestTarget).
  void beginRetranslateAll();

  //===--------------------------------------------------------------------===
  // Background compilation.
  //===--------------------------------------------------------------------===

  /// Runs up to \p BudgetUnits of queued compile/relocate work.
  /// \returns the units actually consumed.
  double runJitWork(double BudgetUnits);

  /// Attaches the observability context (spans for every finished job,
  /// phase-transition events, per-kind job counters).  \p SecondsPerUnit
  /// converts a job's cost units to virtual seconds at this JIT's worker
  /// pool rate; \p Track is the tracer lane for JIT spans.  Null detaches;
  /// a standalone Jit (tests, replay tools) records nothing.
  void setObservability(obs::Observability *O, double SecondsPerUnit,
                        uint32_t Track);

  bool hasPendingWork() const { return !Jobs.empty(); }
  size_t pendingJobs() const { return Jobs.size(); }

  //===--------------------------------------------------------------------===
  // Jump-Start.
  //===--------------------------------------------------------------------===

  /// Consumer side (Figure 3c): installs \p Pkg's profiles and enqueues
  /// the full optimize + relocate pipeline.  The caller drives
  /// runJitWork() to completion before serving.
  void startConsumerPrecompile(const profile::ProfilePackage &Pkg);

  /// First half of startConsumerPrecompile: installs \p Pkg's profiles
  /// on a fresh JIT without enqueueing any work.  Used by
  /// ParallelRetranslate, which pre-lowers into scratch before the
  /// pipeline is enqueued.  \returns corrupt_data on duplicate FuncIds.
  support::Status installPackageProfiles(const profile::ProfilePackage &Pkg);

  /// Seeder side: assembles a package from everything this JIT collected.
  /// The function order is computed with C3 over the tier-2 call graph
  /// when seeder instrumentation ran, else over the tier-1 graph.
  profile::ProfilePackage buildPackage(uint32_t Region, uint32_t Bucket,
                                       uint64_t SeederId,
                                       uint64_t RepoFingerprint) const;

private:
  struct Job {
    enum class Kind : uint8_t {
      CompileProfile,
      CompileLive,
      CompileOptimized,
      Relocate,
    } Kind;
    uint32_t Func = 0;    ///< raw FuncId (compile jobs)
    uint32_t Trans = 0;   ///< translation id (relocate jobs)
    double CostLeft = 0;
    /// The job's full cost, kept for span durations.
    double TotalCost = 0;
  };

  // "enum" disambiguates the type from Job's member of the same name.
  /// Builds a job with its full cost remembered (span durations).
  static Job makeJob(enum Job::Kind K, uint32_t Func, uint32_t Trans,
                     double Cost) {
    return Job{K, Func, Trans, Cost, Cost};
  }
  static const char *jobSpanName(enum Job::Kind K);

  void finishJob(const Job &J);
  /// Records a completed job's span + counter (no-op without obs).
  void noteJobDone(const Job &J);
  /// Records a phase-transition instant event (no-op without obs).
  void notePhase(JitPhase NewPhase);
  void compileOptimized(bc::FuncId F);
  void enqueueRelocations();
  /// Second half of startConsumerPrecompile: enqueues retranslate-all
  /// plus (optionally) the package's live-code tail.
  void enqueueConsumerJobs();
  /// Lowers \p F in optimized mode (region selection, package Vasm
  /// counters).  Pure given an immutable profile store and a pre-warmed
  /// block cache, so ParallelRetranslate may call it from workers.
  std::unique_ptr<VasmUnit> lowerOptimizedUnit(bc::FuncId F);
  /// Lowers \p F in live (tracelet) mode; same purity contract.
  std::unique_ptr<VasmUnit> lowerLiveUnit(bc::FuncId F);
  std::vector<uint32_t> computeFuncOrder() const;
  LayoutOptions layoutOptions() const;

  const bc::Repo &R;
  JitConfig Config;
  bc::BlockCache Blocks;
  CodeCache Cache;
  TransDb Db;
  profile::ProfileStore Store;
  profile::OptProfile OptProf;
  std::unordered_map<std::string, uint64_t> PropCounts;
  std::unordered_map<std::string, uint64_t> PropAffinity;

  obs::Observability *Obs = nullptr;
  double ObsSecondsPerUnit = 0;
  uint32_t ObsTrack = 0;

  JitPhase Phase = JitPhase::Profiling;
  uint64_t ProfiledRequests = 0;
  std::deque<Job> Jobs;
  std::unordered_set<uint32_t> Enqueued; ///< funcs with a pending compile
  bool LiveAreaExhausted = false;

  /// The installed Jump-Start package (consumer mode).
  std::optional<profile::ProfilePackage> Package;

  /// Scratch from ParallelRetranslate: units lowered ahead of time on
  /// host workers, consumed (instead of recomputed) when the serial
  /// pipeline reaches the corresponding job.  Keyed by raw FuncId.
  /// Virtual cost accounting is unchanged -- the pipeline charges the
  /// same units whether a job hits scratch or lowers from scratch's
  /// absence -- so host parallelism never shows up in virtual time.
  std::unordered_map<uint32_t, std::unique_ptr<VasmUnit>> PrecompiledOpt;
  std::unordered_map<uint32_t, std::unique_ptr<VasmUnit>> PrecompiledLive;
  /// Layouts precomputed alongside PrecompiledOpt (layoutUnit is pure in
  /// the unit, so computing it on a worker is placement-equivalent).
  std::unordered_map<uint32_t, UnitLayout> PrecomputedLayouts;

  friend class ParallelRetranslate;
};

} // namespace jumpstart::jit

#endif // JUMPSTART_JIT_JIT_H
