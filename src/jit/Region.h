//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Region selection for the tier-2 optimizing compiler.
///
/// HHVM's region compiler forms arbitrary code regions from profile data
/// (paper section II-A).  In this reproduction a region is a whole
/// function plus an *inline plan*: which profiled callees get embedded at
/// which call sites (driven by site hotness and callee size), and which
/// virtual call sites get devirtualized behind a class guard (driven by
/// the call-target profiles).  This captures the property section V-B
/// hinges on: tier-1 code has no inlining, tier-2 code aggressively does,
/// so a call graph built from tier-1 data misrepresents tier-2 code.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_JIT_REGION_H
#define JUMPSTART_JIT_REGION_H

#include "bytecode/BlockCache.h"
#include "bytecode/Repo.h"
#include "jit/ProvenFacts.h"
#include "profile/ProfileStore.h"

#include <map>
#include <vector>

namespace jumpstart::jit {

/// Inlining and devirtualization thresholds.
struct RegionParams {
  /// Callees larger than this many bytecodes are never inlined.
  uint32_t MaxInlineBytecodes = 48;
  /// Maximum depth of nested inlining.
  uint32_t MaxInlineDepth = 1;
  /// Total region budget (function + all inlined bodies).
  uint32_t MaxRegionBytecodes = 4000;
  /// A call site must execute at least this fraction of the function
  /// entry count to be worth inlining.
  double MinSiteFrequency = 0.35;
  /// A virtual site devirtualizes when one target covers this fraction of
  /// its call-target profile.
  double CallTargetMonoThreshold = 0.95;
};

/// The region compiler's plan for one function.
struct RegionDescriptor {
  bc::FuncId Func;

  /// Call sites chosen for inlining: (enclosing function, instruction
  /// index) -> callee.  Keys use the *enclosing* function because inlining
  /// recurses into already-inlined bodies.
  std::map<uint64_t, bc::FuncId> InlinedCalls;

  /// Virtual call sites that devirtualize to a guarded direct call
  /// (without inlining): (function, instruction index) -> target.
  std::map<uint64_t, bc::FuncId> DevirtualizedCalls;

  /// All distinct functions inlined somewhere in this region.
  std::vector<bc::FuncId> InlinedFuncs;

  /// Total bytecodes covered (function + inlined bodies).
  uint32_t TotalBytecodes = 0;

  static uint64_t siteKey(bc::FuncId F, uint32_t InstrIndex) {
    return (static_cast<uint64_t>(F.raw()) << 32) | InstrIndex;
  }

  bc::FuncId inlinedCallee(bc::FuncId F, uint32_t InstrIndex) const {
    auto It = InlinedCalls.find(siteKey(F, InstrIndex));
    return It == InlinedCalls.end() ? bc::FuncId() : It->second;
  }

  bc::FuncId devirtTarget(bc::FuncId F, uint32_t InstrIndex) const {
    auto It = DevirtualizedCalls.find(siteKey(F, InstrIndex));
    return It == DevirtualizedCalls.end() ? bc::FuncId() : It->second;
  }
};

/// Builds the region (inline plan) for \p Func from the tier-1 profiles
/// in \p Store.  \p Facts (optional) adds analysis-proven
/// devirtualizations: a virtual site with a proven unique target
/// devirtualizes even when the call-target profile never reached
/// dominance (or never ran at all).
RegionDescriptor selectRegion(const bc::Repo &R, bc::BlockCache &Blocks,
                              const profile::ProfileStore &Store,
                              bc::FuncId Func,
                              const RegionParams &Params = RegionParams(),
                              const ProvenFacts *Facts = nullptr);

} // namespace jumpstart::jit

#endif // JUMPSTART_JIT_REGION_H
