//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowering: bytecode -> Vasm.
///
/// Three flavours, matching the paper's translation kinds:
///  - Live: generic lowering of one function, no profile data.
///  - Profile: generic lowering plus an instrumentation counter per block
///    (the tier-1 translations that collect the Jump-Start profile).
///  - Optimized: type-specialized lowering driven by tier-1 observations,
///    with the region's inline plan applied (callee bodies embedded) and
///    virtual sites devirtualized behind guards.
///
/// Block weights: optimized units get weights derived from the tier-1
/// bytecode-block counters.  That derivation is deliberately *lossy*
/// (counts quantize to powers of two, inlined copies are scaled by a
/// call-site estimate, guard exits are guessed) -- modelling the semantic
/// gap between where HHVM collects profiles (bytecode) and where layout
/// runs (Vasm), which section V-A identifies as the inaccuracy Jump-Start
/// fixes by re-profiling at the Vasm level on seeders.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_JIT_LOWER_H
#define JUMPSTART_JIT_LOWER_H

#include "jit/ProvenFacts.h"
#include "jit/Region.h"
#include "jit/Translation.h"

#include <memory>

namespace jumpstart::jit {

/// Lowering controls.
struct LowerOptions {
  TransKind Kind = TransKind::Live;
  /// Seeder-side instrumentation of optimized code: adds a counter to
  /// every Vasm block and to function entries (paper sections V-A, V-B).
  bool SeederInstrumentation = false;
  /// A site specializes when its dominant observed type covers this
  /// fraction.
  double TypeMonoThreshold = 0.95;
  /// ShareJIT-style constraints (paper section III / ShareJit, OOPSLA
  /// 2018): produce machine code that can be shared byte-for-byte across
  /// processes.  Absolute addresses must not be embedded -- literal
  /// strings, direct call targets and class pointers go through
  /// indirection tables -- and user-defined functions are never inlined.
  bool SharedCodeConstraints = false;
  /// Whole-program proven facts (non-owning; the Jit's config keeps them
  /// alive).  When set, optimized lowering elides guards the analysis
  /// proved redundant and specializes sites whose types are proven even
  /// without profile monomorphy, recording every elision on the unit.
  const ProvenFacts *Facts = nullptr;
};

/// Lowers \p Func.  For optimized kind, \p Store supplies type and block
/// profiles and \p Region the inline plan; both may be null for
/// live/profile kinds.
std::unique_ptr<VasmUnit>
lowerFunction(const bc::Repo &R, bc::BlockCache &Blocks, bc::FuncId Func,
              const profile::ProfileStore *Store,
              const RegionDescriptor *Region, const LowerOptions &Opts);

/// Extra layout edges (call-site -> inlined-callee-entry) that are not
/// Vasm successor links but matter for block placement.
struct LayoutEdge {
  uint32_t Src;
  uint32_t Dst;
};

/// Lowering records these on the unit via this side table (keyed by unit
/// address is clumsy; they are returned through the unit itself).
/// See VasmUnit::CallEdges.

} // namespace jumpstart::jit

#endif // JUMPSTART_JIT_LOWER_H
