//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "jit/Jit.h"

#include "layout/FunctionSort.h"
#include "obs/Observability.h"
#include "support/Assert.h"
#include "support/StringUtil.h"

#include <algorithm>

using namespace jumpstart;
using namespace jumpstart::jit;

const char *jumpstart::jit::jitPhaseName(JitPhase P) {
  switch (P) {
  case JitPhase::Profiling:
    return "profiling";
  case JitPhase::Optimizing:
    return "optimizing";
  case JitPhase::Relocating:
    return "relocating";
  case JitPhase::Mature:
    return "mature";
  }
  return "?";
}

Jit::Jit(const bc::Repo &R, JitConfig Config)
    : R(R), Config(Config), Blocks(R), Cache(Config.Cache) {}

void Jit::setObservability(obs::Observability *O, double SecondsPerUnit,
                           uint32_t Track) {
  Obs = O;
  ObsSecondsPerUnit = SecondsPerUnit;
  ObsTrack = Track;
}

const char *Jit::jobSpanName(enum Job::Kind K) {
  switch (K) {
  case Job::Kind::CompileProfile:
    return "compile-tier1";
  case Job::Kind::CompileLive:
    return "compile-live";
  case Job::Kind::CompileOptimized:
    return "compile-tier2";
  case Job::Kind::Relocate:
    return "relocate";
  }
  return "?";
}

void Jit::noteJobDone(const Job &J) {
  if (!Obs)
    return;
  double Dur = J.TotalCost * ObsSecondsPerUnit;
  double End = Obs->Clock.now();
  Obs->Trace.completeSpan(
      jobSpanName(J.Kind), "jit", ObsTrack, std::max(0.0, End - Dur), Dur,
      {J.Kind == Job::Kind::Relocate ? strFormat("trans=%u", J.Trans)
                                     : strFormat("func=%u", J.Func)});
  Obs->Metrics
      .counter("jumpstart.jit.jobs_completed",
               {{"kind", jobSpanName(J.Kind)}})
      .inc();
  // Proven-fact guard elisions accumulate in the translation database as
  // compiles install; exporting after each job keeps the gauge current
  // without a per-elision metric write.  Absent entirely when the
  // whole-program analysis is off (the count stays zero).
  if (uint64_t Elided = Db.guardsElided())
    Obs->Metrics.gauge("jumpstart.jit.guards_elided", {})
        .set(static_cast<double>(Elided));
}

void Jit::notePhase(JitPhase NewPhase) {
  if (!Obs)
    return;
  Obs->Trace.instant(strFormat("jit-phase:%s", jitPhaseName(NewPhase)),
                     "phase", ObsTrack);
  Obs->Metrics.counter("jumpstart.jit.phase_transitions",
                       {{"to", jitPhaseName(NewPhase)}})
      .inc();
}

double Jit::execCostPerBytecode(bc::FuncId F) const {
  const Translation *T = Db.best(F);
  if (T)
    return T->CostPerBytecode;
  return Config.InterpCostPerBytecode;
}

uint64_t Jit::totalCodeBytes() const {
  return Db.bytesOfKind(TransKind::Profile) +
         Db.bytesOfKind(TransKind::Live) +
         Db.bytesOfKind(TransKind::Optimized);
}

void Jit::onFuncEntered(bc::FuncId F) {
  if (R.func(F).Code.empty())
    return;
  if (Phase == JitPhase::Profiling) {
    if (Db.forFunc(F, TransKind::Profile) || Enqueued.count(F.raw()))
      return;
    Enqueued.insert(F.raw());
    Jobs.push_back(makeJob(Job::Kind::CompileProfile, F.raw(), 0,
                           static_cast<double>(R.func(F).Code.size()) *
                               Config.ProfileCompileCostPerBytecode));
    return;
  }
  // Past profiling: anything still uncompiled takes the tracelet (live)
  // path, until the live area fills (Figure 1 point D).
  if (LiveAreaExhausted || Db.best(F) || Enqueued.count(F.raw()))
    return;
  if (Db.forFunc(F, TransKind::Optimized))
    return; // optimized exists but is awaiting relocation
  Enqueued.insert(F.raw());
  Jobs.push_back(makeJob(Job::Kind::CompileLive, F.raw(), 0,
                         static_cast<double>(R.func(F).Code.size()) *
                             Config.LiveCompileCostPerBytecode));
}

void Jit::onRequestFinished() {
  if (Phase != JitPhase::Profiling)
    return;
  ++ProfiledRequests;
  if (ProfiledRequests >= Config.ProfileRequestTarget)
    beginRetranslateAll();
}

void Jit::beginRetranslateAll() {
  if (Phase != JitPhase::Profiling)
    return;
  Phase = JitPhase::Optimizing;
  if (Obs)
    Obs->Trace.instant("retranslate-all", "jit", ObsTrack);
  notePhase(JitPhase::Optimizing);
  // Drop pending profile compiles; profiling is over.
  std::deque<Job> Kept;
  for (const Job &J : Jobs)
    if (J.Kind != Job::Kind::CompileProfile)
      Kept.push_back(J);
    else
      Enqueued.erase(J.Func);
  Jobs = std::move(Kept);

  // Optimize every profiled function, hottest first (determinism: ties by
  // FuncId).
  std::vector<std::pair<uint64_t, uint32_t>> ByHotness;
  for (const auto &[FuncRaw, Prof] : Store.all())
    ByHotness.push_back({Prof.totalSamples(), FuncRaw});
  std::sort(ByHotness.begin(), ByHotness.end(),
            [](const auto &A, const auto &B) {
              if (A.first != B.first)
                return A.first > B.first;
              return A.second < B.second;
            });
  for (const auto &[Samples, FuncRaw] : ByHotness) {
    (void)Samples;
    if (R.func(bc::FuncId(FuncRaw)).Code.empty())
      continue;
    // In ShareJIT mode the machine code already exists; "compiling" is
    // relocation and pointer-table patching, a tiny fraction of a real
    // region compile.
    double CostPerBytecode = Config.ShareJitMode
                                 ? Config.OptCompileCostPerBytecode * 0.02
                                 : Config.OptCompileCostPerBytecode;
    Jobs.push_back(makeJob(
        Job::Kind::CompileOptimized, FuncRaw, 0,
        static_cast<double>(R.func(bc::FuncId(FuncRaw)).Code.size()) *
            CostPerBytecode));
  }
  if (Jobs.empty()) {
    // Nothing was profiled (e.g. a consumer with an empty package).
    Phase = JitPhase::Mature;
    notePhase(JitPhase::Mature);
  }
}

std::unique_ptr<VasmUnit> Jit::lowerOptimizedUnit(bc::FuncId F) {
  RegionDescriptor Region;
  if (Config.ShareJitMode) {
    // Sharing constraints forbid inlining user-defined functions and
    // devirtualized direct calls (they embed addresses).
    Region.Func = F;
  } else {
    // Proven facts extend devirtualization beyond profile dominance, but
    // never under sharing constraints (direct calls embed addresses).
    const ProvenFacts *Facts =
        Config.ProvenGuardElision ? Config.Facts.get() : nullptr;
    Region = selectRegion(R, Blocks, Store, F, Config.Region, Facts);
  }
  LowerOptions Opts;
  Opts.Kind = TransKind::Optimized;
  Opts.SeederInstrumentation = Config.SeederInstrumentation;
  Opts.TypeMonoThreshold = Config.TypeMonoThreshold;
  Opts.SharedCodeConstraints = Config.ShareJitMode;
  if (Config.ProvenGuardElision && !Config.ShareJitMode)
    Opts.Facts = Config.Facts.get();
  auto Unit = lowerFunction(R, Blocks, F, &Store, &Region, Opts);

  // Jump-Start consumers inject the accurate Vasm counters right before
  // layout (paper section V-A).
  if (Package && Config.UseVasmCounters) {
    auto It = Package->Opt.VasmBlockCounts.find(F.raw());
    if (It != Package->Opt.VasmBlockCounts.end())
      injectVasmCounts(*Unit, It->second);
  }
  return Unit;
}

std::unique_ptr<VasmUnit> Jit::lowerLiveUnit(bc::FuncId F) {
  LowerOptions Opts;
  Opts.Kind = TransKind::Live;
  return lowerFunction(R, Blocks, F, nullptr, nullptr, Opts);
}

void Jit::compileOptimized(bc::FuncId F) {
  if (Db.forFunc(F, TransKind::Optimized))
    return;
  std::unique_ptr<VasmUnit> Unit;
  auto Scratch = PrecompiledOpt.find(F.raw());
  if (Scratch != PrecompiledOpt.end()) {
    Unit = std::move(Scratch->second);
    PrecompiledOpt.erase(Scratch);
  } else {
    Unit = lowerOptimizedUnit(F);
  }
  Db.create(TransKind::Optimized, std::move(Unit));
}

LayoutOptions Jit::layoutOptions() const {
  LayoutOptions L;
  L.UseExtTsp = Config.UseExtTsp;
  L.SplitCold = Config.SplitHotCold;
  return L;
}

std::vector<uint32_t> Jit::computeFuncOrder() const {
  // Precomputed order from the package (category 4) wins.
  if (Package && Config.UsePackageFuncOrder &&
      !Package->Intermediate.FuncOrder.empty())
    return Package->Intermediate.FuncOrder;
  if (!Config.UseFunctionSort) {
    std::vector<uint32_t> Order;
    for (const auto &T : Db.all())
      if (T->Kind == TransKind::Optimized)
        Order.push_back(T->Unit->Func.raw());
    return Order;
  }
  // C3 over the best call graph available: the tier-2 entry-counter graph
  // when the package carries one (section V-B), else the tier-1 graph.
  layout::CallGraph G;
  if (Package && Config.UsePackageFuncOrder && !Package->Opt.CallArcs.empty())
    G = buildTier2CallGraph(R, Package->Opt, Store);
  else
    G = buildTier1CallGraph(R, const_cast<bc::BlockCache &>(Blocks), Store);
  return layout::c3Order(G);
}

void Jit::enqueueRelocations() {
  std::vector<uint32_t> Order = computeFuncOrder();
  std::unordered_set<uint32_t> Seen;
  auto Enqueue = [&](uint32_t FuncRaw) {
    if (!Seen.insert(FuncRaw).second)
      return;
    Translation *T = Db.forFunc(bc::FuncId(FuncRaw), TransKind::Optimized);
    if (!T || T->Placed)
      return;
    Jobs.push_back(makeJob(Job::Kind::Relocate, 0, T->Id,
                           static_cast<double>(T->Unit->sizeBytes()) *
                               Config.RelocateCostPerByte));
  };
  for (uint32_t FuncRaw : Order)
    Enqueue(FuncRaw);
  // Anything the order missed still gets placed (compile order).
  for (const auto &T : Db.all())
    if (T->Kind == TransKind::Optimized)
      Enqueue(T->Unit->Func.raw());
}

void Jit::finishJob(const Job &J) {
  switch (J.Kind) {
  case Job::Kind::CompileProfile: {
    bc::FuncId F(J.Func);
    Enqueued.erase(J.Func);
    if (Phase != JitPhase::Profiling)
      return; // profiling ended while this was queued
    LowerOptions Opts;
    Opts.Kind = TransKind::Profile;
    auto Unit = lowerFunction(R, Blocks, F, nullptr, nullptr, Opts);
    Translation &T = Db.create(TransKind::Profile, std::move(Unit));
    UnitLayout L;
    L.HotOrder.resize(T.Unit->Blocks.size());
    for (uint32_t I = 0; I < L.HotOrder.size(); ++I)
      L.HotOrder[I] = I;
    placeTranslation(T, Cache, CodeArea::Profile, L);
    return;
  }
  case Job::Kind::CompileLive: {
    bc::FuncId F(J.Func);
    Enqueued.erase(J.Func);
    std::unique_ptr<VasmUnit> Unit;
    auto Scratch = PrecompiledLive.find(J.Func);
    if (Scratch != PrecompiledLive.end()) {
      Unit = std::move(Scratch->second);
      PrecompiledLive.erase(Scratch);
    } else {
      Unit = lowerLiveUnit(F);
    }
    Translation &T = Db.create(TransKind::Live, std::move(Unit));
    UnitLayout L;
    L.HotOrder.resize(T.Unit->Blocks.size());
    for (uint32_t I = 0; I < L.HotOrder.size(); ++I)
      L.HotOrder[I] = I;
    if (!placeTranslation(T, Cache, CodeArea::Live, L))
      LiveAreaExhausted = true; // Figure 1 point D
    return;
  }
  case Job::Kind::CompileOptimized:
    compileOptimized(bc::FuncId(J.Func));
    return;
  case Job::Kind::Relocate: {
    Translation *T = Db.find(J.Trans);
    alwaysAssert(T != nullptr, "relocate job for unknown translation");
    UnitLayout L;
    auto Scratch = PrecomputedLayouts.find(T->Unit->Func.raw());
    if (Scratch != PrecomputedLayouts.end()) {
      L = std::move(Scratch->second);
      PrecomputedLayouts.erase(Scratch);
    } else {
      L = layoutUnit(*T->Unit, layoutOptions());
    }
    placeTranslation(*T, Cache, CodeArea::Hot, L);
    return;
  }
  }
}

double Jit::runJitWork(double BudgetUnits) {
  double Consumed = 0;
  while (BudgetUnits > 0 && !Jobs.empty()) {
    Job &J = Jobs.front();
    double Spend = std::min(BudgetUnits, J.CostLeft);
    J.CostLeft -= Spend;
    BudgetUnits -= Spend;
    Consumed += Spend;
    if (J.CostLeft > 0)
      break;
    Job Done = J;
    Jobs.pop_front();
    finishJob(Done);
    noteJobDone(Done);
  }

  // Phase transitions when a stage's queue drains.
  if (Jobs.empty()) {
    if (Phase == JitPhase::Optimizing) {
      Phase = JitPhase::Relocating;
      notePhase(JitPhase::Relocating);
      enqueueRelocations();
      if (Jobs.empty()) {
        Phase = JitPhase::Mature;
        notePhase(JitPhase::Mature);
      }
    } else if (Phase == JitPhase::Relocating) {
      Phase = JitPhase::Mature;
      notePhase(JitPhase::Mature);
    }
  }
  return Consumed;
}

support::Status
Jit::installPackageProfiles(const profile::ProfilePackage &Pkg) {
  alwaysAssert(Phase == JitPhase::Profiling && Db.size() == 0,
               "consumer precompile must run on a fresh JIT");
  Package = Pkg;
  return Store.loadFromPackage(Pkg);
}

void Jit::enqueueConsumerJobs() {
  alwaysAssert(Package.has_value(),
               "enqueueConsumerJobs without an installed package");
  // Skip profiling entirely: go straight to retranslate-all.
  beginRetranslateAll();
  // Optionally also pre-compile the seeder's live-code tail (the
  // section IV-A alternative).
  if (Config.PrecompileLiveCode) {
    for (uint32_t FuncRaw : Package->Intermediate.LiveFuncs) {
      bc::FuncId F(FuncRaw);
      if (FuncRaw >= R.numFuncs() || R.func(F).Code.empty())
        continue;
      if (Store.find(FuncRaw) || Enqueued.count(FuncRaw))
        continue; // profiled functions get optimized translations anyway
      Enqueued.insert(FuncRaw);
      Jobs.push_back(makeJob(Job::Kind::CompileLive, FuncRaw, 0,
                             static_cast<double>(R.func(F).Code.size()) *
                                 Config.LiveCompileCostPerBytecode));
    }
    if (Phase == JitPhase::Mature && !Jobs.empty())
      Phase = JitPhase::Optimizing; // keep draining until live code done
  }
}

void Jit::startConsumerPrecompile(const profile::ProfilePackage &Pkg) {
  support::Status S = installPackageProfiles(Pkg);
  alwaysAssert(S.ok(), "startConsumerPrecompile: bad package (callers "
                       "validate with deserialize + lint first)");
  enqueueConsumerJobs();
}

profile::ProfilePackage Jit::buildPackage(uint32_t Region, uint32_t Bucket,
                                          uint64_t SeederId,
                                          uint64_t RepoFingerprint) const {
  profile::ProfilePackage Pkg;
  Pkg.RepoFingerprint = RepoFingerprint;
  Pkg.Region = Region;
  Pkg.Bucket = Bucket;
  Pkg.SeederId = SeederId;
  Store.exportToPackage(Pkg);
  Pkg.Opt = OptProf;
  Pkg.Opt.PropAccessCounts = PropCounts;
  Pkg.Opt.PropAffinity = PropAffinity;

  // Category 4: the precomputed function order, from the tier-2 call
  // graph when seeder instrumentation collected one.
  layout::CallGraph G;
  if (!OptProf.CallArcs.empty())
    G = buildTier2CallGraph(R, OptProf, Store);
  else
    G = buildTier1CallGraph(R, const_cast<bc::BlockCache &>(Blocks), Store);
  Pkg.Intermediate.FuncOrder = layout::c3Order(G);

  // The live-code tail this seeder accumulated (consumed only under
  // PrecompileLiveCode).
  for (const auto &T : Db.all())
    if (T->Kind == TransKind::Live)
      Pkg.Intermediate.LiveFuncs.push_back(T->Unit->Func.raw());
  std::sort(Pkg.Intermediate.LiveFuncs.begin(),
            Pkg.Intermediate.LiveFuncs.end());

  // Category 1: preload lists.  Units of profiled functions in hotness
  // order; classes and literal strings referenced by them.
  std::vector<std::pair<uint64_t, uint32_t>> ByHotness;
  for (const auto &[FuncRaw, Prof] : Store.all())
    ByHotness.push_back({Prof.totalSamples(), FuncRaw});
  std::sort(ByHotness.begin(), ByHotness.end(),
            [](const auto &A, const auto &B) {
              if (A.first != B.first)
                return A.first > B.first;
              return A.second < B.second;
            });
  std::unordered_set<uint32_t> SeenUnits;
  std::unordered_set<uint32_t> SeenStrings;
  std::unordered_set<uint32_t> SeenClasses;
  for (const auto &[Samples, FuncRaw] : ByHotness) {
    (void)Samples;
    const bc::Function &F = R.func(bc::FuncId(FuncRaw));
    if (SeenUnits.insert(F.Unit.raw()).second)
      Pkg.Preload.Units.push_back(F.Unit.raw());
    if (F.Cls.valid() && SeenClasses.insert(F.Cls.raw()).second)
      Pkg.Preload.Classes.push_back(F.Cls.raw());
    for (const bc::Instr &In : F.Code) {
      const bc::OpInfo &Info = bc::opInfo(In.Opcode);
      if (Info.ImmA == bc::ImmKind::Str &&
          SeenStrings.insert(In.strImm().raw()).second)
        Pkg.Preload.Strings.push_back(In.strImm().raw());
      if (Info.ImmA == bc::ImmKind::Cls &&
          SeenClasses.insert(In.clsImm().raw()).second)
        Pkg.Preload.Classes.push_back(In.clsImm().raw());
    }
  }
  return Pkg;
}
