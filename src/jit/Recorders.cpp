//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "jit/Recorders.h"

using namespace jumpstart;
using namespace jumpstart::jit;

JitProfilingHooks::JitProfilingHooks(Jit &J) : J(J) {}

void JitProfilingHooks::onFuncEnter(bc::FuncId Callee, bc::FuncId Caller,
                                    const runtime::Value *Args,
                                    uint32_t NumArgs) {
  Frame F;
  F.Func = Callee.raw();
  const Translation *T = J.transDb().best(Callee);

  if (T && T->Kind == TransKind::Profile) {
    F.IsProfileTier = true;
    F.Prof = &J.profileStore().getOrCreate(Callee.raw());
    F.Prof->EntryCount += 1;
    if (F.Prof->ParamTypes.size() < NumArgs)
      F.Prof->ParamTypes.resize(NumArgs);
    for (uint32_t I = 0; I < NumArgs; ++I)
      F.Prof->ParamTypes[I].observe(Args[I].T);
  }

  // Seeder-side instrumentation of optimized code (sections V-A / V-B).
  if (J.config().SeederInstrumentation) {
    Frame *Parent = top();
    const VasmUnit *ParentUnit = Parent ? Parent->ActiveUnit : nullptr;
    if (ParentUnit && ParentUnit->isInlined(Callee)) {
      // Inlined: keep counting in the caller's unit; no entry counter
      // fires, so no tier-2 call arc (the property section V-B needs).
      F.ActiveUnit = ParentUnit;
      F.IsInstrumentedOpt = Parent->IsInstrumentedOpt;
    } else if (T && T->Kind == TransKind::Optimized) {
      F.ActiveUnit = T->Unit.get();
      F.IsInstrumentedOpt = true;
      // Entry counter: the tier-2 call graph arc.  The caller is the
      // *physical* one -- the unit whose code issued the call -- which
      // differs from the semantic caller when that function was inlined
      // somewhere.  (HHVM's entry instrumentation sees return addresses,
      // i.e. physical callers; this is exactly why the tier-2 graph
      // places code better than the tier-1 graph, section V-B.)
      bc::FuncId PhysicalCaller =
          ParentUnit ? ParentUnit->Func : Caller;
      if (PhysicalCaller.valid())
        J.optProfile().CallArcs[{PhysicalCaller.raw(), Callee.raw()}] += 1;
    }
  }

  Frames.push_back(F);
}

void JitProfilingHooks::onFuncExit(bc::FuncId F) {
  (void)F;
  if (!Frames.empty())
    Frames.pop_back();
}

void JitProfilingHooks::onBlockEnter(bc::FuncId F, uint32_t Block) {
  Frame *Top = top();
  if (!Top)
    return;
  if (Top->IsProfileTier && Top->Prof) {
    size_t NumBlocks = J.blockCache().blocks(F).numBlocks();
    if (Top->Prof->BlockCounts.size() < NumBlocks)
      Top->Prof->BlockCounts.resize(NumBlocks, 0);
    Top->Prof->BlockCounts[Block] += 1;
  }
  if (Top->IsInstrumentedOpt && Top->ActiveUnit) {
    uint32_t VB = Top->ActiveUnit->findBlock(F, Block);
    if (VB != VasmUnit::kNoBlock) {
      auto &Counts =
          J.optProfile().VasmBlockCounts[Top->ActiveUnit->Func.raw()];
      if (Counts.size() < Top->ActiveUnit->Blocks.size())
        Counts.resize(Top->ActiveUnit->Blocks.size(), 0);
      Counts[VB] += 1;
    }
  }
}

void JitProfilingHooks::onVirtualCall(bc::FuncId Caller, uint32_t InstrIndex,
                                      bc::FuncId Callee) {
  Frame *Top = top();
  if (!Top || !Top->IsProfileTier || !Top->Prof)
    return;
  (void)Caller;
  Top->Prof->CallTargets[InstrIndex][Callee.raw()] += 1;
}

void JitProfilingHooks::onTypeObserve(bc::FuncId F, uint32_t InstrIndex,
                                      runtime::Type T) {
  (void)F;
  Frame *Top = top();
  if (!Top || !Top->IsProfileTier || !Top->Prof)
    return;
  Top->Prof->LoadTypes[InstrIndex].observe(T);
}

void JitProfilingHooks::onPropAccess(bc::ClassId Cls, bc::StringId Prop,
                                     bool IsWrite, uint64_t Addr) {
  (void)IsWrite;
  (void)Addr;
  Frame *Top = top();
  if (!Top || !Top->IsProfileTier)
    return;
  // The paper's seeder-side hash table keyed "Class::prop" (section V-C).
  // Building the key allocates; property profiling only runs on tier-1
  // translations, which are a small slice of total execution.
  const bc::Repo &R = J.repo();
  std::string Key = R.cls(Cls).Name + "::" + R.str(Prop);
  J.propCounts()[Key] += 1;

  // Affinity: consecutive accesses to two distinct properties of the
  // same class (the section V-C future-work signal).  Keys use
  // lexicographic property order so "a then b" and "b then a" merge.
  if (LastPropCls == Cls.raw() && LastPropName != Prop.raw()) {
    const std::string &A = R.str(bc::StringId(LastPropName));
    const std::string &B = R.str(Prop);
    std::string PairKey = R.cls(Cls).Name + "::" +
                          (A < B ? A + "::" + B : B + "::" + A);
    J.propAffinity()[PairKey] += 1;
  }
  LastPropCls = Cls.raw();
  LastPropName = Prop.raw();
}
