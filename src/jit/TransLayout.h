//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Applies the code-layout optimizations to a Vasm unit and places the
/// result in the code cache: Ext-TSP block ordering, hot/cold splitting,
/// and the injection of accurate Vasm block counters from a Jump-Start
/// package right before layout (paper section V-A).
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_JIT_TRANSLAYOUT_H
#define JUMPSTART_JIT_TRANSLAYOUT_H

#include "bytecode/BlockCache.h"
#include "jit/CodeCache.h"
#include "jit/Translation.h"
#include "layout/CallGraph.h"
#include "profile/ProfilePackage.h"
#include "profile/ProfileStore.h"

#include <vector>

namespace jumpstart::jit {

/// Layout controls for one translation.
struct LayoutOptions {
  /// Run Ext-TSP block reordering (otherwise keep lowering order).
  bool UseExtTsp = true;
  /// Split cold blocks into the cold area.
  bool SplitCold = true;
  /// Blocks below this fraction of the entry weight are cold.
  double ColdRatio = 0.01;
};

/// The computed placement order of a unit's blocks.
struct UnitLayout {
  std::vector<uint32_t> HotOrder;
  std::vector<uint32_t> ColdOrder;
};

/// Computes the block layout of \p Unit.
UnitLayout layoutUnit(const VasmUnit &Unit, const LayoutOptions &Opts);

/// Overwrites \p Unit's block weights with the accurate counters \p Counts
/// (collected on seeders from instrumented optimized code).  Extra or
/// missing trailing entries are tolerated: layouts may differ slightly
/// across servers.
void injectVasmCounts(VasmUnit &Unit, const std::vector<uint64_t> &Counts);

/// Places \p T in the code cache: hot blocks in \p HotArea in layout
/// order, cold blocks (if any) in the cold area.  \returns false when an
/// area is full (translation stays unplaced).
bool placeTranslation(Translation &T, CodeCache &Cache, CodeArea HotArea,
                      const UnitLayout &Layout);

/// Builds the tier-1 call graph (paper section V-B's *inaccurate* one):
/// nodes are functions with tier-1 sample counts; arcs come from direct
/// call sites (weighted by the enclosing block's count) and from the
/// call-target profiles of virtual sites.  Because tier-1 code has no
/// inlining, arcs into functions that tier-2 will inline are all present
/// -- misrepresenting the optimized code.
layout::CallGraph buildTier1CallGraph(const bc::Repo &R,
                                      bc::BlockCache &Blocks,
                                      const profile::ProfileStore &Store);

/// Builds the tier-2 call graph from seeder entry-instrumentation arcs
/// (paper section V-B's accurate one: inlined calls never appear).
layout::CallGraph buildTier2CallGraph(const bc::Repo &R,
                                      const profile::OptProfile &Opt,
                                      const profile::ProfileStore &Store);

} // namespace jumpstart::jit

#endif // JUMPSTART_JIT_TRANSLAYOUT_H
