//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "jit/ParallelRetranslate.h"

#include "support/Assert.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace jumpstart;
using namespace jumpstart::jit;

RetranslateStats
ParallelRetranslate::run(double SliceUnits,
                         const std::function<void(double)> &OnSlice) {
  alwaysAssert(SliceUnits > 0, "retranslate slice budget must be positive");
  alwaysAssert(J.phase() == JitPhase::Profiling,
               "parallel retranslate-all needs a Profiling-phase JIT");
  RetranslateStats Stats;
  Stats.HostWorkers = Pool ? Pool->numWorkers() : 0;

  // Collect the work-list the serial pipeline will enqueue: optimized
  // compiles for every profiled function with code, plus the package's
  // live-code tail (same filters as Jit::enqueueConsumerJobs).
  struct Task {
    uint32_t FuncRaw;
    bool Live;
  };
  std::vector<Task> Tasks;
  for (const auto &[FuncRaw, Prof] : J.Store.all()) {
    (void)Prof;
    if (!J.R.func(bc::FuncId(FuncRaw)).Code.empty())
      Tasks.push_back({FuncRaw, /*Live=*/false});
  }
  // Scratch is keyed by func, so task order is irrelevant to the output;
  // sort only to make per-worker chunking reproducible.
  std::sort(Tasks.begin(), Tasks.end(),
            [](const Task &A, const Task &B) {
              return A.FuncRaw < B.FuncRaw;
            });
  if (J.Package && J.Config.PrecompileLiveCode) {
    for (uint32_t FuncRaw : J.Package->Intermediate.LiveFuncs) {
      if (FuncRaw >= J.R.numFuncs() ||
          J.R.func(bc::FuncId(FuncRaw)).Code.empty())
        continue;
      if (J.Store.find(FuncRaw))
        continue;
      Tasks.push_back({FuncRaw, /*Live=*/true});
    }
  }

  // Warm the block cache for every function before fanning out: it is
  // the one lazily-built shared structure, and region selection may
  // reach callees far outside the profiled set.  After this loop the
  // workers only read it.
  for (uint32_t FuncRaw = 0; FuncRaw < J.R.numFuncs(); ++FuncRaw)
    (void)J.Blocks.blocks(bc::FuncId(FuncRaw));

  // Parallel lowering into indexed scratch slots (no shared writes).
  struct Slot {
    std::unique_ptr<VasmUnit> Unit;
    UnitLayout Layout;
  };
  std::vector<Slot> Slots(Tasks.size());
  auto LowerOne = [&](size_t I) {
    const Task &T = Tasks[I];
    bc::FuncId F(T.FuncRaw);
    if (T.Live) {
      Slots[I].Unit = J.lowerLiveUnit(F);
    } else {
      Slots[I].Unit = J.lowerOptimizedUnit(F);
      Slots[I].Layout = layoutUnit(*Slots[I].Unit, J.layoutOptions());
    }
  };
  if (Pool)
    Pool->parallelFor(Tasks.size(), LowerOne);
  else
    for (size_t I = 0; I < Tasks.size(); ++I)
      LowerOne(I);

  // Serial from here on.  Install the scratch, then run the unchanged
  // pipeline; jobs consume scratch instead of recomputing.
  for (size_t I = 0; I < Tasks.size(); ++I) {
    if (Tasks[I].Live) {
      J.PrecompiledLive.emplace(Tasks[I].FuncRaw, std::move(Slots[I].Unit));
    } else {
      J.PrecompiledOpt.emplace(Tasks[I].FuncRaw, std::move(Slots[I].Unit));
      J.PrecomputedLayouts.emplace(Tasks[I].FuncRaw,
                                   std::move(Slots[I].Layout));
    }
  }
  if (J.Package)
    J.enqueueConsumerJobs();
  else
    J.beginRetranslateAll();
  for (const auto &Job : J.Jobs)
    Stats.CompileUnits += Job.TotalCost;
  Stats.FunctionsCompiled = J.Jobs.size();

  double Consumed = 0;
  while (J.hasPendingWork()) {
    double Step = J.runJitWork(SliceUnits);
    Consumed += Step;
    if (OnSlice)
      OnSlice(Step);
    alwaysAssert(Step > 0, "jit pipeline stalled with pending work");
  }
  Stats.RelocateUnits = Consumed - Stats.CompileUnits;

  for (const auto &T : J.Db.all())
    if (T->Placed)
      ++Stats.TranslationsPlaced;

  // Anything the pipeline did not consume (e.g. a function whose
  // optimized translation already existed) would go stale; drop it.
  J.PrecompiledOpt.clear();
  J.PrecompiledLive.clear();
  J.PrecomputedLayouts.clear();
  return Stats;
}
