//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "jit/ParallelRetranslate.h"

#include "support/Assert.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace jumpstart;
using namespace jumpstart::jit;

void ParallelRetranslate::prelowerPending(Jit &J,
                                          support::ThreadPool *Pool) {
  if (J.Jobs.empty())
    return;

  // Snapshot the lowering work the queued jobs will need.  Profile
  // compiles are skipped: they are cheap, phase-dependent, and have no
  // scratch slot.
  struct Task {
    uint32_t FuncRaw = 0;
    const VasmUnit *LayoutOf = nullptr; ///< layout-only (relocate jobs)
    bool Live = false;
  };
  std::vector<Task> Tasks;
  for (const Jit::Job &Job : J.Jobs) {
    switch (Job.Kind) {
    case Jit::Job::Kind::CompileProfile:
      break;
    case Jit::Job::Kind::CompileOptimized:
      if (J.Db.forFunc(bc::FuncId(Job.Func), TransKind::Optimized) ||
          J.PrecompiledOpt.count(Job.Func))
        break; // already compiled or already prelowered
      Tasks.push_back({Job.Func, nullptr, /*Live=*/false});
      break;
    case Jit::Job::Kind::CompileLive:
      if (!J.PrecompiledLive.count(Job.Func))
        Tasks.push_back({Job.Func, nullptr, /*Live=*/true});
      break;
    case Jit::Job::Kind::Relocate: {
      const Translation *T = J.Db.find(Job.Trans);
      if (!T || T->Placed ||
          J.PrecomputedLayouts.count(T->Unit->Func.raw()))
        break;
      Tasks.push_back({T->Unit->Func.raw(), T->Unit.get(), false});
      break;
    }
    }
  }
  if (Tasks.empty())
    return;

  // Warm the shared block cache serially (see run()); after this the
  // workers only read it.
  for (uint32_t FuncRaw = 0; FuncRaw < J.R.numFuncs(); ++FuncRaw)
    (void)J.Blocks.blocks(bc::FuncId(FuncRaw));

  struct Slot {
    std::unique_ptr<VasmUnit> Unit;
    UnitLayout Layout;
    bool HasLayout = false;
  };
  std::vector<Slot> Slots(Tasks.size());
  const LayoutOptions LO = J.layoutOptions();
  auto LowerOne = [&](size_t I) {
    const Task &T = Tasks[I];
    if (T.LayoutOf) {
      Slots[I].Layout = layoutUnit(*T.LayoutOf, LO);
      Slots[I].HasLayout = true;
      return;
    }
    bc::FuncId F(T.FuncRaw);
    if (T.Live) {
      Slots[I].Unit = J.lowerLiveUnit(F);
    } else {
      Slots[I].Unit = J.lowerOptimizedUnit(F);
      Slots[I].Layout = layoutUnit(*Slots[I].Unit, LO);
      Slots[I].HasLayout = true;
    }
  };
  if (Pool)
    Pool->parallelFor(Tasks.size(), LowerOne);
  else
    for (size_t I = 0; I < Tasks.size(); ++I)
      LowerOne(I);

  for (size_t I = 0; I < Tasks.size(); ++I) {
    const Task &T = Tasks[I];
    if (T.Live) {
      J.PrecompiledLive.emplace(T.FuncRaw, std::move(Slots[I].Unit));
      continue;
    }
    if (Slots[I].Unit)
      J.PrecompiledOpt.emplace(T.FuncRaw, std::move(Slots[I].Unit));
    if (Slots[I].HasLayout)
      J.PrecomputedLayouts.emplace(T.FuncRaw,
                                   std::move(Slots[I].Layout));
  }
}

RetranslateStats
ParallelRetranslate::run(double SliceUnits,
                         const std::function<void(double)> &OnSlice) {
  alwaysAssert(SliceUnits > 0, "retranslate slice budget must be positive");
  alwaysAssert(J.phase() == JitPhase::Profiling,
               "parallel retranslate-all needs a Profiling-phase JIT");
  RetranslateStats Stats;
  Stats.HostWorkers = Pool ? Pool->numWorkers() : 0;

  // Collect the work-list the serial pipeline will enqueue: optimized
  // compiles for every profiled function with code, plus the package's
  // live-code tail (same filters as Jit::enqueueConsumerJobs).
  struct Task {
    uint32_t FuncRaw;
    bool Live;
  };
  std::vector<Task> Tasks;
  for (const auto &[FuncRaw, Prof] : J.Store.all()) {
    (void)Prof;
    if (!J.R.func(bc::FuncId(FuncRaw)).Code.empty())
      Tasks.push_back({FuncRaw, /*Live=*/false});
  }
  // Scratch is keyed by func, so task order is irrelevant to the output;
  // sort only to make per-worker chunking reproducible.
  std::sort(Tasks.begin(), Tasks.end(),
            [](const Task &A, const Task &B) {
              return A.FuncRaw < B.FuncRaw;
            });
  if (J.Package && J.Config.PrecompileLiveCode) {
    for (uint32_t FuncRaw : J.Package->Intermediate.LiveFuncs) {
      if (FuncRaw >= J.R.numFuncs() ||
          J.R.func(bc::FuncId(FuncRaw)).Code.empty())
        continue;
      if (J.Store.find(FuncRaw))
        continue;
      Tasks.push_back({FuncRaw, /*Live=*/true});
    }
  }

  // Warm the block cache for every function before fanning out: it is
  // the one lazily-built shared structure, and region selection may
  // reach callees far outside the profiled set.  After this loop the
  // workers only read it.
  for (uint32_t FuncRaw = 0; FuncRaw < J.R.numFuncs(); ++FuncRaw)
    (void)J.Blocks.blocks(bc::FuncId(FuncRaw));

  // Parallel lowering into indexed scratch slots (no shared writes).
  struct Slot {
    std::unique_ptr<VasmUnit> Unit;
    UnitLayout Layout;
  };
  std::vector<Slot> Slots(Tasks.size());
  auto LowerOne = [&](size_t I) {
    const Task &T = Tasks[I];
    bc::FuncId F(T.FuncRaw);
    if (T.Live) {
      Slots[I].Unit = J.lowerLiveUnit(F);
    } else {
      Slots[I].Unit = J.lowerOptimizedUnit(F);
      Slots[I].Layout = layoutUnit(*Slots[I].Unit, J.layoutOptions());
    }
  };
  if (Pool)
    Pool->parallelFor(Tasks.size(), LowerOne);
  else
    for (size_t I = 0; I < Tasks.size(); ++I)
      LowerOne(I);

  // Serial from here on.  Install the scratch, then run the unchanged
  // pipeline; jobs consume scratch instead of recomputing.
  for (size_t I = 0; I < Tasks.size(); ++I) {
    if (Tasks[I].Live) {
      J.PrecompiledLive.emplace(Tasks[I].FuncRaw, std::move(Slots[I].Unit));
    } else {
      J.PrecompiledOpt.emplace(Tasks[I].FuncRaw, std::move(Slots[I].Unit));
      J.PrecomputedLayouts.emplace(Tasks[I].FuncRaw,
                                   std::move(Slots[I].Layout));
    }
  }
  if (J.Package)
    J.enqueueConsumerJobs();
  else
    J.beginRetranslateAll();
  for (const auto &Job : J.Jobs)
    Stats.CompileUnits += Job.TotalCost;
  Stats.FunctionsCompiled = J.Jobs.size();

  double Consumed = 0;
  while (J.hasPendingWork()) {
    double Step = J.runJitWork(SliceUnits);
    Consumed += Step;
    if (OnSlice)
      OnSlice(Step);
    alwaysAssert(Step > 0, "jit pipeline stalled with pending work");
  }
  Stats.RelocateUnits = Consumed - Stats.CompileUnits;

  for (const auto &T : J.Db.all())
    if (T->Placed)
      ++Stats.TranslationsPlaced;

  // Anything the pipeline did not consume (e.g. a function whose
  // optimized translation already existed) would go stale; drop it.
  J.PrecompiledOpt.clear();
  J.PrecompiledLive.clear();
  J.PrecomputedLayouts.clear();
  return Stats;
}
