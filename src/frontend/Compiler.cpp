//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"

#include "bytecode/FuncBuilder.h"
#include "frontend/Parser.h"
#include "support/StringUtil.h"

#include <cstring>
#include <unordered_map>

using namespace jumpstart;
using namespace jumpstart::frontend;
using bc::FuncBuilder;
using bc::Op;

namespace {

/// Shared state for one whole-program compilation.
struct ProgramContext {
  bc::Repo &R;
  const runtime::BuiltinTable &Builtins;
  std::vector<std::string> Errors;

  void error(const std::string &Unit, uint32_t Line, const std::string &Msg) {
    Errors.push_back(
        strFormat("%s:%u: %s", Unit.c_str(), Line, Msg.c_str()));
  }
};

/// Generates bytecode for one function or method body.
class FuncCodegen {
public:
  FuncCodegen(ProgramContext &Ctx, const std::string &UnitName,
              bc::Function &F, const FuncDecl &Decl, bool IsMethod)
      : Ctx(Ctx), UnitName(UnitName), F(F), Decl(Decl), IsMethod(IsMethod),
        B(F) {}

  void run() {
    for (const std::string &Param : Decl.Params)
      localSlot(Param);
    F.NumParams = static_cast<uint32_t>(Decl.Params.size());
    genBlock(Decl.Body);
    // Guarantee a return: fall-off-the-end yields null, as in PHP.
    B.emit(Op::Null);
    B.emit(Op::RetC);
    B.finish();
  }

private:
  void error(uint32_t Line, const std::string &Msg) {
    Ctx.error(UnitName, Line ? Line : Decl.Line, Msg);
  }

  uint32_t localSlot(const std::string &Name) {
    auto It = Locals.find(Name);
    if (It != Locals.end())
      return It->second;
    uint32_t Slot = B.newLocal();
    Locals.emplace(Name, Slot);
    return Slot;
  }

  bc::StringId intern(const std::string &S) { return Ctx.R.internString(S); }

  //===------------------------------------------------------------------===
  // Statements.
  //===------------------------------------------------------------------===

  void genBlock(const std::vector<StmtPtr> &Stmts) {
    for (const StmtPtr &S : Stmts)
      genStmt(*S);
  }

  void genStmt(const Stmt &S) {
    switch (S.K) {
    case Stmt::Kind::ExprStmt:
      genExpr(*S.E);
      B.emit(Op::PopC);
      return;
    case Stmt::Kind::Assign:
      genAssign(S);
      return;
    case Stmt::Kind::If: {
      auto ElseL = B.newLabel();
      auto EndL = B.newLabel();
      genExpr(*S.C);
      B.emitJump(Op::JmpZ, ElseL);
      genBlock(S.Body);
      B.emitJump(Op::Jmp, EndL);
      B.bind(ElseL);
      genBlock(S.ElseBody);
      B.bind(EndL);
      return;
    }
    case Stmt::Kind::While: {
      auto CondL = B.newLabel();
      auto EndL = B.newLabel();
      B.bind(CondL);
      genExpr(*S.C);
      B.emitJump(Op::JmpZ, EndL);
      LoopStack.push_back({CondL, EndL});
      genBlock(S.Body);
      LoopStack.pop_back();
      B.emitJump(Op::Jmp, CondL);
      B.bind(EndL);
      return;
    }
    case Stmt::Kind::Return:
      if (S.E)
        genExpr(*S.E);
      else
        B.emit(Op::Null);
      B.emit(Op::RetC);
      return;
    case Stmt::Kind::Break:
      if (LoopStack.empty()) {
        error(S.Line, "'break' outside of a loop");
        return;
      }
      B.emitJump(Op::Jmp, LoopStack.back().BreakL);
      return;
    case Stmt::Kind::Continue:
      if (LoopStack.empty()) {
        error(S.Line, "'continue' outside of a loop");
        return;
      }
      B.emitJump(Op::Jmp, LoopStack.back().ContinueL);
      return;
    case Stmt::Kind::Block:
      genBlock(S.Body);
      return;
    }
  }

  void genAssign(const Stmt &S) {
    const Expr &Target = *S.Target;
    switch (Target.K) {
    case Expr::Kind::Var:
      genExpr(*S.E);
      B.emit(Op::SetL, localSlot(Target.Name));
      return;
    case Expr::Kind::PropGet:
      genExpr(*Target.L);
      genExpr(*S.E);
      B.emit(Op::SetProp, intern(Target.Name).raw());
      return;
    case Expr::Kind::Index: {
      const Expr &Base = *Target.L;
      if (Base.K == Expr::Kind::Var) {
        // $a[i] = v  =>  a' = SetElem(a, i, v); a = a'
        uint32_t Slot = localSlot(Base.Name);
        B.emit(Op::GetL, Slot);
        genExpr(*Target.R);
        genExpr(*S.E);
        B.emit(Op::SetElem);
        B.emit(Op::SetL, Slot);
        return;
      }
      if (Base.K == Expr::Kind::PropGet) {
        // $o->p[i] = v  =>  o; dup; o.p; i; v; SetElem; SetProp p
        genExpr(*Base.L);
        B.emit(Op::Dup);
        B.emit(Op::GetProp, intern(Base.Name).raw());
        genExpr(*Target.R);
        genExpr(*S.E);
        B.emit(Op::SetElem);
        B.emit(Op::SetProp, intern(Base.Name).raw());
        return;
      }
      error(S.Line, "unsupported index-assignment base (use a variable or "
                    "property)");
      return;
    }
    default:
      error(S.Line, "invalid assignment target");
      return;
    }
  }

  //===------------------------------------------------------------------===
  // Expressions.
  //===------------------------------------------------------------------===

  void genExpr(const Expr &E) {
    switch (E.K) {
    case Expr::Kind::IntLit:
      B.emit(Op::Int, E.IntValue);
      return;
    case Expr::Kind::DblLit: {
      int64_t Bits;
      std::memcpy(&Bits, &E.DblValue, sizeof(Bits));
      B.emit(Op::Dbl, Bits);
      return;
    }
    case Expr::Kind::StrLit:
      B.emit(Op::Str, intern(E.Name).raw());
      return;
    case Expr::Kind::BoolLit:
      B.emit(E.IntValue ? Op::True : Op::False);
      return;
    case Expr::Kind::NullLit:
      B.emit(Op::Null);
      return;
    case Expr::Kind::Var:
      B.emit(Op::GetL, localSlot(E.Name));
      return;
    case Expr::Kind::This:
      if (!IsMethod)
        error(E.Line, "'$this' outside of a method");
      B.emit(Op::GetThis);
      return;
    case Expr::Kind::Binary:
      genBinary(E);
      return;
    case Expr::Kind::Unary:
      if (E.IsNot) {
        genExpr(*E.L);
        B.emit(Op::Not);
      } else {
        B.emit(Op::Int, 0);
        genExpr(*E.L);
        B.emit(Op::Sub);
      }
      return;
    case Expr::Kind::Call:
      genCall(E);
      return;
    case Expr::Kind::Method:
      genExpr(*E.L);
      for (const ExprPtr &A : E.Args)
        genExpr(*A);
      B.emit(Op::FCallObj, intern(E.Name).raw(),
             static_cast<int64_t>(E.Args.size()));
      return;
    case Expr::Kind::PropGet:
      genExpr(*E.L);
      B.emit(Op::GetProp, intern(E.Name).raw());
      return;
    case Expr::Kind::Index:
      genExpr(*E.L);
      genExpr(*E.R);
      B.emit(Op::GetElem);
      return;
    case Expr::Kind::New: {
      bc::ClassId Cls = Ctx.R.findClass(E.Name);
      if (!Cls.valid()) {
        error(E.Line, strFormat("unknown class '%s'", E.Name.c_str()));
        B.emit(Op::Null);
        return;
      }
      B.emit(Op::NewObj, Cls.raw());
      return;
    }
    case Expr::Kind::VecLit:
      B.emit(Op::NewVec);
      for (const ExprPtr &A : E.Args) {
        genExpr(*A);
        B.emit(Op::AddElem);
      }
      return;
    case Expr::Kind::DictLit:
      B.emit(Op::NewDict);
      for (size_t I = 0; I + 1 < E.Args.size(); I += 2) {
        genExpr(*E.Args[I]);
        genExpr(*E.Args[I + 1]);
        B.emit(Op::AddKeyElem);
      }
      return;
    }
  }

  void genBinary(const Expr &E) {
    // Short-circuit forms produce a Bool on both paths.
    if (E.Op == BinOp::And) {
      auto FalseL = B.newLabel();
      auto EndL = B.newLabel();
      genExpr(*E.L);
      B.emitJump(Op::JmpZ, FalseL);
      genExpr(*E.R);
      B.emit(Op::Not);
      B.emit(Op::Not);
      B.emitJump(Op::Jmp, EndL);
      B.bind(FalseL);
      B.emit(Op::False);
      B.bind(EndL);
      return;
    }
    if (E.Op == BinOp::Or) {
      auto TrueL = B.newLabel();
      auto EndL = B.newLabel();
      genExpr(*E.L);
      B.emitJump(Op::JmpNZ, TrueL);
      genExpr(*E.R);
      B.emit(Op::Not);
      B.emit(Op::Not);
      B.emitJump(Op::Jmp, EndL);
      B.bind(TrueL);
      B.emit(Op::True);
      B.bind(EndL);
      return;
    }

    genExpr(*E.L);
    genExpr(*E.R);
    switch (E.Op) {
    case BinOp::Add:
      B.emit(Op::Add);
      return;
    case BinOp::Sub:
      B.emit(Op::Sub);
      return;
    case BinOp::Mul:
      B.emit(Op::Mul);
      return;
    case BinOp::Div:
      B.emit(Op::Div);
      return;
    case BinOp::Mod:
      B.emit(Op::Mod);
      return;
    case BinOp::Concat:
      B.emit(Op::Concat);
      return;
    case BinOp::Eq:
      B.emit(Op::CmpEq);
      return;
    case BinOp::Ne:
      B.emit(Op::CmpNe);
      return;
    case BinOp::Lt:
      B.emit(Op::CmpLt);
      return;
    case BinOp::Le:
      B.emit(Op::CmpLe);
      return;
    case BinOp::Gt:
      B.emit(Op::CmpGt);
      return;
    case BinOp::Ge:
      B.emit(Op::CmpGe);
      return;
    case BinOp::And:
    case BinOp::Or:
      return; // handled above
    }
  }

  void genCall(const Expr &E) {
    for (const ExprPtr &A : E.Args)
      genExpr(*A);

    // User functions shadow builtins, as in PHP.
    bc::FuncId Callee = Ctx.R.findFunction(E.Name);
    if (Callee.valid()) {
      const bc::Function &CalleeFunc = Ctx.R.func(Callee);
      if (CalleeFunc.NumParams != E.Args.size()) {
        error(E.Line, strFormat("call to '%s' passes %zu args, expects %u",
                                E.Name.c_str(), E.Args.size(),
                                CalleeFunc.NumParams));
      }
      B.emit(Op::FCall, Callee.raw(), static_cast<int64_t>(E.Args.size()));
      return;
    }

    uint32_t BuiltinId = Ctx.Builtins.find(E.Name);
    if (BuiltinId != runtime::BuiltinTable::kNotFound) {
      const runtime::Builtin &Native = Ctx.Builtins.builtin(BuiltinId);
      if (Native.Arity != E.Args.size())
        error(E.Line, strFormat("builtin '%s' takes %u args, got %zu",
                                E.Name.c_str(), Native.Arity, E.Args.size()));
      B.emit(Op::NativeCall, BuiltinId, static_cast<int64_t>(E.Args.size()));
      return;
    }

    error(E.Line, strFormat("unknown function '%s'", E.Name.c_str()));
    B.emit(Op::Null);
  }

  struct LoopLabels {
    FuncBuilder::Label ContinueL;
    FuncBuilder::Label BreakL;
  };

  ProgramContext &Ctx;
  const std::string &UnitName;
  bc::Function &F;
  const FuncDecl &Decl;
  bool IsMethod;
  FuncBuilder B;
  std::unordered_map<std::string, uint32_t> Locals;
  std::vector<LoopLabels> LoopStack;
};

/// Mangles a method name for the global function table.
std::string methodFuncName(const std::string &Cls, const std::string &M) {
  return Cls + "::" + M;
}

} // namespace

std::vector<std::string>
jumpstart::frontend::compileProgram(bc::Repo &R,
                                    const runtime::BuiltinTable &Builtins,
                                    const std::vector<SourceFile> &Files) {
  ProgramContext Ctx{R, Builtins, {}};

  // Parse everything first.
  struct ParsedFile {
    const SourceFile *Src;
    Program Prog;
    bc::UnitId Unit;
  };
  std::vector<ParsedFile> Parsed;
  Parsed.reserve(Files.size());
  for (const SourceFile &File : Files) {
    Parser P(File.Source);
    Program Prog = P.parseProgram();
    for (const std::string &E : P.errors())
      Ctx.Errors.push_back(File.Name + ":" + E);
    Parsed.push_back(ParsedFile{&File, std::move(Prog), bc::UnitId()});
  }
  if (!Ctx.Errors.empty())
    return std::move(Ctx.Errors);

  // Declare pass: create all units, classes (without parents yet),
  // functions and methods, so bodies can reference anything.
  for (ParsedFile &PF : Parsed) {
    bc::Unit &U = R.createUnit(PF.Src->Name);
    PF.Unit = U.Id;
    for (const FuncDecl &FD : PF.Prog.Funcs) {
      if (R.findFunction(FD.Name).valid()) {
        Ctx.error(PF.Src->Name, FD.Line,
                  strFormat("duplicate function '%s'", FD.Name.c_str()));
        continue;
      }
      bc::Function &F = R.createFunction(U, FD.Name);
      F.NumParams = static_cast<uint32_t>(FD.Params.size());
    }
    for (const ClassDecl &CD : PF.Prog.Classes) {
      if (R.findClass(CD.Name).valid()) {
        Ctx.error(PF.Src->Name, CD.Line,
                  strFormat("duplicate class '%s'", CD.Name.c_str()));
        continue;
      }
      bc::Class &K = R.createClass(U, CD.Name);
      for (const std::string &Prop : CD.Props)
        K.DeclProps.push_back(R.internString(Prop));
      bc::ClassId KId = K.Id;
      for (const FuncDecl &MD : CD.Methods) {
        std::string FullName = methodFuncName(CD.Name, MD.Name);
        if (R.findFunction(FullName).valid()) {
          Ctx.error(PF.Src->Name, MD.Line,
                    strFormat("duplicate method '%s'", FullName.c_str()));
          continue;
        }
        // createFunction invalidates class references; re-fetch.
        bc::Unit &UnitRef =
            const_cast<bc::Unit &>(R.unit(PF.Unit));
        bc::Function &M = R.createFunction(UnitRef, FullName);
        M.NumParams = static_cast<uint32_t>(MD.Params.size());
        M.Cls = KId;
        R.clsMutable(KId).Methods.emplace(R.internString(MD.Name).raw(),
                                          M.Id);
      }
    }
  }

  // Resolve class parents (may be declared in any unit).
  for (ParsedFile &PF : Parsed) {
    for (const ClassDecl &CD : PF.Prog.Classes) {
      if (CD.ParentName.empty())
        continue;
      bc::ClassId Child = R.findClass(CD.Name);
      bc::ClassId Parent = R.findClass(CD.ParentName);
      if (!Parent.valid()) {
        Ctx.error(PF.Src->Name, CD.Line,
                  strFormat("unknown parent class '%s'",
                            CD.ParentName.c_str()));
        continue;
      }
      if (Child.valid())
        R.clsMutable(Child).Parent = Parent;
    }
  }

  // Detect inheritance cycles before anything walks parent chains.
  for (const bc::Class &K : R.classes()) {
    bc::ClassId Slow = K.Id;
    bc::ClassId Fast = K.Parent;
    while (Fast.valid() && R.cls(Fast).Parent.valid()) {
      if (Fast == Slow) {
        Ctx.Errors.push_back(
            strFormat("inheritance cycle involving class '%s'",
                      K.Name.c_str()));
        break;
      }
      Slow = R.cls(Slow).Parent;
      Fast = R.cls(R.cls(Fast).Parent).Parent;
    }
  }
  if (!Ctx.Errors.empty())
    return std::move(Ctx.Errors);

  // Emit pass: generate bytecode for every body.
  for (ParsedFile &PF : Parsed) {
    for (const FuncDecl &FD : PF.Prog.Funcs) {
      bc::FuncId Id = R.findFunction(FD.Name);
      if (!Id.valid())
        continue;
      FuncCodegen Gen(Ctx, PF.Src->Name, R.funcMutable(Id), FD,
                      /*IsMethod=*/false);
      Gen.run();
    }
    for (const ClassDecl &CD : PF.Prog.Classes) {
      for (const FuncDecl &MD : CD.Methods) {
        bc::FuncId Id = R.findFunction(methodFuncName(CD.Name, MD.Name));
        if (!Id.valid())
          continue;
        FuncCodegen Gen(Ctx, PF.Src->Name, R.funcMutable(Id), MD,
                        /*IsMethod=*/true);
        Gen.run();
      }
    }
  }

  return std::move(Ctx.Errors);
}

std::vector<std::string>
jumpstart::frontend::compileUnit(bc::Repo &R,
                                 const runtime::BuiltinTable &Builtins,
                                 std::string_view UnitName,
                                 std::string_view Source) {
  std::vector<SourceFile> Files;
  Files.push_back(SourceFile{std::string(UnitName), std::string(Source)});
  return compileProgram(R, Builtins, Files);
}
