//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lexer for the mini-Hack source language.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_FRONTEND_LEXER_H
#define JUMPSTART_FRONTEND_LEXER_H

#include "frontend/Token.h"

#include <string_view>

namespace jumpstart::frontend {

/// Produces tokens from a source buffer.  Malformed input yields an Error
/// token carrying a diagnostic in Text; the lexer never aborts.
class Lexer {
public:
  explicit Lexer(std::string_view Source) : Src(Source) {}

  /// Lexes and returns the next token.
  Token next();

private:
  void skipTrivia();
  Token lexNumber();
  Token lexString();
  Token lexIdent();
  Token lexVariable();
  Token makeToken(TokKind K);
  Token errorToken(const char *Msg);
  char peek(size_t Ahead = 0) const;
  char advance();
  bool match(char C);

  std::string_view Src;
  size_t Pos = 0;
  uint32_t Line = 1;
};

} // namespace jumpstart::frontend

#endif // JUMPSTART_FRONTEND_LEXER_H
