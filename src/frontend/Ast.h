//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax tree for the mini-Hack source language.
///
/// Nodes are tagged structs (one fat struct per category) rather than a
/// class hierarchy; the language is small and the codegen dispatches on a
/// Kind enum.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_FRONTEND_AST_H
#define JUMPSTART_FRONTEND_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace jumpstart::frontend {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Binary operators at the AST level.
enum class BinOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Concat,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And, ///< short-circuit &&
  Or,  ///< short-circuit ||
};

/// An expression node.
struct Expr {
  enum class Kind : uint8_t {
    IntLit,
    DblLit,
    StrLit,
    BoolLit,
    NullLit,
    Var,     ///< $name              (Name)
    This,    ///< $this
    Binary,  ///< L op R
    Unary,   ///< !E or -E           (Op reused: Not encoded via NotFlag)
    Call,    ///< name(args)         (Name, Args)
    Method,  ///< obj->name(args)    (L = receiver, Name, Args)
    PropGet, ///< obj->name          (L = receiver, Name)
    Index,   ///< base[index]        (L = base, R = index)
    New,     ///< new Name()
    VecLit,  ///< vec[e, e, ...]     (Args)
    DictLit, ///< dict[k => v, ...]  (Args holds k0,v0,k1,v1,...)
  };

  Kind K;
  uint32_t Line = 0;
  int64_t IntValue = 0;
  double DblValue = 0;
  std::string Name; ///< identifier / string literal payload
  BinOp Op = BinOp::Add;
  bool IsNot = false; ///< for Unary: true = '!', false = unary '-'
  ExprPtr L;
  ExprPtr R;
  std::vector<ExprPtr> Args;

  explicit Expr(Kind K) : K(K) {}
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// A statement node.
struct Stmt {
  enum class Kind : uint8_t {
    ExprStmt, ///< E;                         (E)
    Assign,   ///< target = E;                (Target, E)
    If,       ///< if (C) Then else Else      (C, Then, Else)
    While,    ///< while (C) Body             (C, Then=Body)
    Return,   ///< return E?;                 (E may be null)
    Break,
    Continue,
    Block, ///< { stmts }                     (Body)
  };

  Kind K;
  uint32_t Line = 0;
  ExprPtr Target; ///< Assign: a Var, PropGet or Index expression.
  ExprPtr E;
  ExprPtr C;
  std::vector<StmtPtr> Body; ///< Block statements / loop body / then-arm.
  std::vector<StmtPtr> ElseBody;

  explicit Stmt(Kind K) : K(K) {}
};

/// A function or method declaration.
struct FuncDecl {
  std::string Name;
  std::vector<std::string> Params;
  std::vector<StmtPtr> Body;
  uint32_t Line = 0;
};

/// A class declaration.
struct ClassDecl {
  std::string Name;
  std::string ParentName; ///< empty = no parent
  std::vector<std::string> Props;
  std::vector<FuncDecl> Methods;
  uint32_t Line = 0;
};

/// One parsed source file.
struct Program {
  std::vector<FuncDecl> Funcs;
  std::vector<ClassDecl> Classes;
};

} // namespace jumpstart::frontend

#endif // JUMPSTART_FRONTEND_AST_H
