//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "support/StringUtil.h"

#include <functional>

using namespace jumpstart;
using namespace jumpstart::frontend;

Parser::Parser(std::string_view Source) : Lex(Source) { Cur = Lex.next(); }

void Parser::bump() {
  if (Cur.Kind == TokKind::Error) {
    error(Cur.Text);
    // Skip the bad token so parsing can make progress.
  }
  if (Cur.Kind != TokKind::Eof)
    Cur = Lex.next();
}

bool Parser::accept(TokKind K) {
  if (!check(K))
    return false;
  bump();
  return true;
}

bool Parser::expect(TokKind K, const char *Context) {
  if (accept(K))
    return true;
  error(strFormat("expected %s %s, found %s", tokKindName(K), Context,
                  tokKindName(Cur.Kind)));
  return false;
}

void Parser::error(const std::string &Msg) {
  if (Errors.size() >= kMaxErrors)
    return;
  Errors.push_back(strFormat("line %u: %s", Cur.Line, Msg.c_str()));
}

void Parser::synchronizeToDecl() {
  while (!check(TokKind::Eof) && !check(TokKind::KwFunction) &&
         !check(TokKind::KwClass))
    bump();
}

Program Parser::parseProgram() {
  Program P;
  while (!check(TokKind::Eof)) {
    if (check(TokKind::KwFunction)) {
      P.Funcs.push_back(parseFunction());
      continue;
    }
    if (check(TokKind::KwClass)) {
      P.Classes.push_back(parseClass());
      continue;
    }
    error(strFormat("expected a declaration, found %s",
                    tokKindName(Cur.Kind)));
    bump();
    synchronizeToDecl();
  }
  return P;
}

std::vector<std::string> Parser::parseParamList() {
  std::vector<std::string> Params;
  expect(TokKind::LParen, "before parameter list");
  if (!check(TokKind::RParen)) {
    do {
      if (check(TokKind::Variable)) {
        Params.push_back(Cur.Text);
        bump();
      } else {
        error("expected a parameter variable");
        break;
      }
    } while (accept(TokKind::Comma));
  }
  expect(TokKind::RParen, "after parameter list");
  return Params;
}

FuncDecl Parser::parseFunction() {
  FuncDecl F;
  F.Line = Cur.Line;
  expect(TokKind::KwFunction, "to start a function");
  if (check(TokKind::Ident)) {
    F.Name = Cur.Text;
    bump();
  } else {
    error("expected a function name");
  }
  F.Params = parseParamList();
  F.Body = parseBlock();
  return F;
}

ClassDecl Parser::parseClass() {
  ClassDecl C;
  C.Line = Cur.Line;
  expect(TokKind::KwClass, "to start a class");
  if (check(TokKind::Ident)) {
    C.Name = Cur.Text;
    bump();
  } else {
    error("expected a class name");
  }
  if (accept(TokKind::KwExtends)) {
    if (check(TokKind::Ident)) {
      C.ParentName = Cur.Text;
      bump();
    } else {
      error("expected a parent class name after 'extends'");
    }
  }
  expect(TokKind::LBrace, "to open the class body");
  while (!check(TokKind::RBrace) && !check(TokKind::Eof)) {
    if (accept(TokKind::KwProp)) {
      if (check(TokKind::Variable)) {
        C.Props.push_back(Cur.Text);
        bump();
      } else {
        error("expected a property variable after 'prop'");
      }
      expect(TokKind::Semi, "after property declaration");
      continue;
    }
    if (check(TokKind::KwMethod)) {
      FuncDecl M;
      M.Line = Cur.Line;
      bump();
      if (check(TokKind::Ident)) {
        M.Name = Cur.Text;
        bump();
      } else {
        error("expected a method name");
      }
      M.Params = parseParamList();
      M.Body = parseBlock();
      C.Methods.push_back(std::move(M));
      continue;
    }
    error(strFormat("expected 'prop' or 'method' in class body, found %s",
                    tokKindName(Cur.Kind)));
    bump();
  }
  expect(TokKind::RBrace, "to close the class body");
  return C;
}

std::vector<StmtPtr> Parser::parseBlock() {
  std::vector<StmtPtr> Stmts;
  expect(TokKind::LBrace, "to open a block");
  while (!check(TokKind::RBrace) && !check(TokKind::Eof)) {
    if (Errors.size() >= kMaxErrors)
      break;
    Stmts.push_back(parseStatement());
  }
  expect(TokKind::RBrace, "to close a block");
  return Stmts;
}

StmtPtr Parser::parseStatement() {
  switch (Cur.Kind) {
  case TokKind::KwIf:
    return parseIf();
  case TokKind::KwWhile:
    return parseWhile();
  case TokKind::KwReturn:
    return parseReturn();
  case TokKind::KwBreak: {
    auto S = std::make_unique<Stmt>(Stmt::Kind::Break);
    S->Line = Cur.Line;
    bump();
    expect(TokKind::Semi, "after 'break'");
    return S;
  }
  case TokKind::KwContinue: {
    auto S = std::make_unique<Stmt>(Stmt::Kind::Continue);
    S->Line = Cur.Line;
    bump();
    expect(TokKind::Semi, "after 'continue'");
    return S;
  }
  case TokKind::LBrace: {
    auto S = std::make_unique<Stmt>(Stmt::Kind::Block);
    S->Line = Cur.Line;
    S->Body = parseBlock();
    return S;
  }
  default:
    return parseExprOrAssign();
  }
}

StmtPtr Parser::parseIf() {
  auto S = std::make_unique<Stmt>(Stmt::Kind::If);
  S->Line = Cur.Line;
  expect(TokKind::KwIf, "to start an if statement");
  expect(TokKind::LParen, "before the condition");
  S->C = parseExpr();
  expect(TokKind::RParen, "after the condition");
  S->Body = parseBlock();
  if (accept(TokKind::KwElse)) {
    if (check(TokKind::KwIf)) {
      // 'else if' chains: wrap the nested if as a one-statement else-arm.
      S->ElseBody.push_back(parseIf());
    } else {
      S->ElseBody = parseBlock();
    }
  }
  return S;
}

StmtPtr Parser::parseWhile() {
  auto S = std::make_unique<Stmt>(Stmt::Kind::While);
  S->Line = Cur.Line;
  expect(TokKind::KwWhile, "to start a while statement");
  expect(TokKind::LParen, "before the loop condition");
  S->C = parseExpr();
  expect(TokKind::RParen, "after the loop condition");
  S->Body = parseBlock();
  return S;
}

StmtPtr Parser::parseReturn() {
  auto S = std::make_unique<Stmt>(Stmt::Kind::Return);
  S->Line = Cur.Line;
  expect(TokKind::KwReturn, "to start a return statement");
  if (!check(TokKind::Semi))
    S->E = parseExpr();
  expect(TokKind::Semi, "after return");
  return S;
}

StmtPtr Parser::parseExprOrAssign() {
  uint32_t Line = Cur.Line;
  ExprPtr E = parseExpr();

  auto MakeAssign = [&](ExprPtr Target, ExprPtr Value) {
    auto S = std::make_unique<Stmt>(Stmt::Kind::Assign);
    S->Line = Line;
    S->Target = std::move(Target);
    S->E = std::move(Value);
    return S;
  };

  auto IsAssignable = [](const Expr &Target) {
    return Target.K == Expr::Kind::Var || Target.K == Expr::Kind::PropGet ||
           Target.K == Expr::Kind::Index;
  };

  if (check(TokKind::Assign) || check(TokKind::PlusAssign) ||
      check(TokKind::MinusAssign) || check(TokKind::DotAssign)) {
    TokKind AssignKind = Cur.Kind;
    bump();
    ExprPtr Value = parseExpr();
    if (!E || !IsAssignable(*E)) {
      error("left-hand side is not assignable");
      expect(TokKind::Semi, "after statement");
      auto S = std::make_unique<Stmt>(Stmt::Kind::ExprStmt);
      S->Line = Line;
      S->E = std::move(Value);
      return S;
    }
    // Desugar compound assignment: clone the target as the LHS operand.
    if (AssignKind != TokKind::Assign) {
      // Desugaring deep-clones the target as the binary LHS.  For property
      // or index targets this re-evaluates the base expression, which the
      // language's value semantics tolerate.
      std::function<ExprPtr(const Expr &)> Clone =
          [&](const Expr &Node) -> ExprPtr {
        auto Copy = std::make_unique<Expr>(Node.K);
        Copy->Line = Node.Line;
        Copy->IntValue = Node.IntValue;
        Copy->DblValue = Node.DblValue;
        Copy->Name = Node.Name;
        Copy->Op = Node.Op;
        Copy->IsNot = Node.IsNot;
        if (Node.L)
          Copy->L = Clone(*Node.L);
        if (Node.R)
          Copy->R = Clone(*Node.R);
        for (const ExprPtr &A : Node.Args)
          Copy->Args.push_back(Clone(*A));
        return Copy;
      };
      auto Bin = std::make_unique<Expr>(Expr::Kind::Binary);
      Bin->Line = Line;
      Bin->Op = AssignKind == TokKind::PlusAssign    ? BinOp::Add
                : AssignKind == TokKind::MinusAssign ? BinOp::Sub
                                                     : BinOp::Concat;
      Bin->L = Clone(*E);
      Bin->R = std::move(Value);
      Value = std::move(Bin);
    }
    expect(TokKind::Semi, "after assignment");
    return MakeAssign(std::move(E), std::move(Value));
  }

  expect(TokKind::Semi, "after expression statement");
  auto S = std::make_unique<Stmt>(Stmt::Kind::ExprStmt);
  S->Line = Line;
  S->E = std::move(E);
  return S;
}

ExprPtr Parser::makeExpr(Expr::Kind K) {
  auto E = std::make_unique<Expr>(K);
  E->Line = Cur.Line;
  return E;
}

ExprPtr Parser::parseExpr() { return parseOr(); }

ExprPtr Parser::parseOr() {
  ExprPtr L = parseAnd();
  while (check(TokKind::OrOr)) {
    bump();
    auto E = makeExpr(Expr::Kind::Binary);
    E->Op = BinOp::Or;
    E->L = std::move(L);
    E->R = parseAnd();
    L = std::move(E);
  }
  return L;
}

ExprPtr Parser::parseAnd() {
  ExprPtr L = parseEquality();
  while (check(TokKind::AndAnd)) {
    bump();
    auto E = makeExpr(Expr::Kind::Binary);
    E->Op = BinOp::And;
    E->L = std::move(L);
    E->R = parseEquality();
    L = std::move(E);
  }
  return L;
}

ExprPtr Parser::parseEquality() {
  ExprPtr L = parseComparison();
  while (check(TokKind::EqEq) || check(TokKind::NotEq)) {
    BinOp Op = check(TokKind::EqEq) ? BinOp::Eq : BinOp::Ne;
    bump();
    auto E = makeExpr(Expr::Kind::Binary);
    E->Op = Op;
    E->L = std::move(L);
    E->R = parseComparison();
    L = std::move(E);
  }
  return L;
}

ExprPtr Parser::parseComparison() {
  ExprPtr L = parseAdditive();
  while (check(TokKind::Lt) || check(TokKind::Le) || check(TokKind::Gt) ||
         check(TokKind::Ge)) {
    BinOp Op = check(TokKind::Lt)   ? BinOp::Lt
               : check(TokKind::Le) ? BinOp::Le
               : check(TokKind::Gt) ? BinOp::Gt
                                    : BinOp::Ge;
    bump();
    auto E = makeExpr(Expr::Kind::Binary);
    E->Op = Op;
    E->L = std::move(L);
    E->R = parseAdditive();
    L = std::move(E);
  }
  return L;
}

ExprPtr Parser::parseAdditive() {
  ExprPtr L = parseMultiplicative();
  while (check(TokKind::Plus) || check(TokKind::Minus) ||
         check(TokKind::Dot)) {
    BinOp Op = check(TokKind::Plus)    ? BinOp::Add
               : check(TokKind::Minus) ? BinOp::Sub
                                       : BinOp::Concat;
    bump();
    auto E = makeExpr(Expr::Kind::Binary);
    E->Op = Op;
    E->L = std::move(L);
    E->R = parseMultiplicative();
    L = std::move(E);
  }
  return L;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr L = parseUnary();
  while (check(TokKind::Star) || check(TokKind::Slash) ||
         check(TokKind::Percent)) {
    BinOp Op = check(TokKind::Star)    ? BinOp::Mul
               : check(TokKind::Slash) ? BinOp::Div
                                       : BinOp::Mod;
    bump();
    auto E = makeExpr(Expr::Kind::Binary);
    E->Op = Op;
    E->L = std::move(L);
    E->R = parseUnary();
    L = std::move(E);
  }
  return L;
}

ExprPtr Parser::parseUnary() {
  if (check(TokKind::Not)) {
    auto E = makeExpr(Expr::Kind::Unary);
    E->IsNot = true;
    bump();
    E->L = parseUnary();
    return E;
  }
  if (check(TokKind::Minus)) {
    auto E = makeExpr(Expr::Kind::Unary);
    E->IsNot = false;
    bump();
    E->L = parseUnary();
    return E;
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  for (;;) {
    if (check(TokKind::Arrow)) {
      bump();
      if (!check(TokKind::Ident)) {
        error("expected a member name after '->'");
        return E;
      }
      std::string Member = Cur.Text;
      uint32_t Line = Cur.Line;
      bump();
      if (check(TokKind::LParen)) {
        auto M = std::make_unique<Expr>(Expr::Kind::Method);
        M->Line = Line;
        M->Name = std::move(Member);
        M->L = std::move(E);
        M->Args = parseArgs();
        E = std::move(M);
      } else {
        auto P = std::make_unique<Expr>(Expr::Kind::PropGet);
        P->Line = Line;
        P->Name = std::move(Member);
        P->L = std::move(E);
        E = std::move(P);
      }
      continue;
    }
    if (check(TokKind::LBracket)) {
      bump();
      auto I = makeExpr(Expr::Kind::Index);
      I->L = std::move(E);
      I->R = parseExpr();
      expect(TokKind::RBracket, "after index expression");
      E = std::move(I);
      continue;
    }
    return E;
  }
}

std::vector<ExprPtr> Parser::parseArgs() {
  std::vector<ExprPtr> Args;
  expect(TokKind::LParen, "before arguments");
  if (!check(TokKind::RParen)) {
    do {
      Args.push_back(parseExpr());
    } while (accept(TokKind::Comma));
  }
  expect(TokKind::RParen, "after arguments");
  return Args;
}

ExprPtr Parser::parsePrimary() {
  switch (Cur.Kind) {
  case TokKind::IntLit: {
    auto E = makeExpr(Expr::Kind::IntLit);
    E->IntValue = Cur.IntValue;
    bump();
    return E;
  }
  case TokKind::DblLit: {
    auto E = makeExpr(Expr::Kind::DblLit);
    E->DblValue = Cur.DblValue;
    bump();
    return E;
  }
  case TokKind::StrLit: {
    auto E = makeExpr(Expr::Kind::StrLit);
    E->Name = Cur.Text;
    bump();
    return E;
  }
  case TokKind::KwTrue: {
    auto E = makeExpr(Expr::Kind::BoolLit);
    E->IntValue = 1;
    bump();
    return E;
  }
  case TokKind::KwFalse: {
    auto E = makeExpr(Expr::Kind::BoolLit);
    E->IntValue = 0;
    bump();
    return E;
  }
  case TokKind::KwNull: {
    auto E = makeExpr(Expr::Kind::NullLit);
    bump();
    return E;
  }
  case TokKind::KwThis: {
    auto E = makeExpr(Expr::Kind::This);
    bump();
    return E;
  }
  case TokKind::Variable: {
    auto E = makeExpr(Expr::Kind::Var);
    E->Name = Cur.Text;
    bump();
    return E;
  }
  case TokKind::KwNew: {
    auto E = makeExpr(Expr::Kind::New);
    bump();
    if (check(TokKind::Ident)) {
      E->Name = Cur.Text;
      bump();
    } else {
      error("expected a class name after 'new'");
    }
    expect(TokKind::LParen, "after class name");
    expect(TokKind::RParen, "after class name");
    return E;
  }
  case TokKind::KwVec: {
    auto E = makeExpr(Expr::Kind::VecLit);
    bump();
    expect(TokKind::LBracket, "after 'vec'");
    if (!check(TokKind::RBracket)) {
      do {
        E->Args.push_back(parseExpr());
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RBracket, "to close the vec literal");
    return E;
  }
  case TokKind::KwDict: {
    auto E = makeExpr(Expr::Kind::DictLit);
    bump();
    expect(TokKind::LBracket, "after 'dict'");
    if (!check(TokKind::RBracket)) {
      do {
        E->Args.push_back(parseExpr());
        expect(TokKind::FatArrow, "between dict key and value");
        E->Args.push_back(parseExpr());
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RBracket, "to close the dict literal");
    return E;
  }
  case TokKind::Ident: {
    auto E = makeExpr(Expr::Kind::Call);
    E->Name = Cur.Text;
    bump();
    E->Args = parseArgs();
    return E;
  }
  case TokKind::LParen: {
    bump();
    ExprPtr E = parseExpr();
    expect(TokKind::RParen, "to close the parenthesized expression");
    return E;
  }
  default:
    error(strFormat("expected an expression, found %s",
                    tokKindName(Cur.Kind)));
    bump();
    return makeExpr(Expr::Kind::NullLit);
  }
}
