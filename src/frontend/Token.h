//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens of the mini-Hack source language.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_FRONTEND_TOKEN_H
#define JUMPSTART_FRONTEND_TOKEN_H

#include <cstdint>
#include <string>

namespace jumpstart::frontend {

enum class TokKind : uint8_t {
  Eof,
  Error,
  // Literals and names.
  IntLit,
  DblLit,
  StrLit,
  Ident,    ///< bare identifier: function/class/method names, keywords.
  Variable, ///< $name
  // Keywords (recognized from Ident during lexing).
  KwFunction,
  KwClass,
  KwExtends,
  KwProp,
  KwMethod,
  KwIf,
  KwElse,
  KwWhile,
  KwReturn,
  KwBreak,
  KwContinue,
  KwTrue,
  KwFalse,
  KwNull,
  KwNew,
  KwThis,
  KwVec,
  KwDict,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Arrow,      ///< ->
  FatArrow,   ///< =>
  Assign,     ///< =
  PlusAssign, ///< +=
  MinusAssign,///< -=
  DotAssign,  ///< .=
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Dot,
  Not,
  EqEq,
  NotEq,
  Lt,
  Le,
  Gt,
  Ge,
  AndAnd,
  OrOr,
};

/// \returns a printable name for \p K (for diagnostics).
const char *tokKindName(TokKind K);

/// One lexed token.  Text holds the identifier / literal spelling.
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  int64_t IntValue = 0;
  double DblValue = 0;
  uint32_t Line = 0;
};

} // namespace jumpstart::frontend

#endif // JUMPSTART_FRONTEND_TOKEN_H
