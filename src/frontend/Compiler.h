//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline compiler: mini-Hack source files -> bytecode repo.
///
/// Mirrors HHVM's repo-authoritative pipeline (paper section II-A): the
/// whole program is compiled ahead of deployment, with global knowledge of
/// every unit, so cross-unit calls resolve to direct FuncIds and class
/// hierarchies are fully known.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_FRONTEND_COMPILER_H
#define JUMPSTART_FRONTEND_COMPILER_H

#include "bytecode/Repo.h"
#include "runtime/Builtins.h"

#include <string>
#include <string_view>
#include <vector>

namespace jumpstart::frontend {

/// One source file handed to the offline compiler.
struct SourceFile {
  std::string Name;
  std::string Source;
};

/// Compiles a whole program (any number of source files) into \p R.
/// Declarations are gathered globally first, so forward and cross-unit
/// references work.  \returns diagnostics; empty means success.  On
/// failure the repo may contain partial declarations and must be
/// discarded.
std::vector<std::string> compileProgram(bc::Repo &R,
                                        const runtime::BuiltinTable &Builtins,
                                        const std::vector<SourceFile> &Files);

/// Convenience wrapper compiling a single source buffer as unit
/// \p UnitName.
std::vector<std::string> compileUnit(bc::Repo &R,
                                     const runtime::BuiltinTable &Builtins,
                                     std::string_view UnitName,
                                     std::string_view Source);

} // namespace jumpstart::frontend

#endif // JUMPSTART_FRONTEND_COMPILER_H
