//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the mini-Hack source language.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_FRONTEND_PARSER_H
#define JUMPSTART_FRONTEND_PARSER_H

#include "frontend/Ast.h"
#include "frontend/Lexer.h"

#include <string>
#include <vector>

namespace jumpstart::frontend {

/// Parses one source file.  Errors are collected (with line numbers) and
/// parsing continues at the next declaration where possible.
class Parser {
public:
  explicit Parser(std::string_view Source);

  /// Parses the whole buffer.  Check errors() before using the result.
  Program parseProgram();

  const std::vector<std::string> &errors() const { return Errors; }

private:
  // Token stream management.
  const Token &cur() const { return Cur; }
  void bump();
  bool check(TokKind K) const { return Cur.Kind == K; }
  bool accept(TokKind K);
  bool expect(TokKind K, const char *Context);
  void error(const std::string &Msg);
  void synchronizeToDecl();

  // Declarations.
  FuncDecl parseFunction();
  ClassDecl parseClass();
  std::vector<std::string> parseParamList();

  // Statements.
  std::vector<StmtPtr> parseBlock();
  StmtPtr parseStatement();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseReturn();
  StmtPtr parseExprOrAssign();

  // Expressions (precedence climbing).
  ExprPtr parseExpr();
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseEquality();
  ExprPtr parseComparison();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();
  std::vector<ExprPtr> parseArgs();

  ExprPtr makeExpr(Expr::Kind K);

  Lexer Lex;
  Token Cur;
  std::vector<std::string> Errors;
  /// Prevents error cascades from emitting thousands of messages.
  static constexpr size_t kMaxErrors = 50;
};

} // namespace jumpstart::frontend

#endif // JUMPSTART_FRONTEND_PARSER_H
