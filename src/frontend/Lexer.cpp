//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include "support/Assert.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace jumpstart;
using namespace jumpstart::frontend;

const char *jumpstart::frontend::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Error:
    return "error";
  case TokKind::IntLit:
    return "integer literal";
  case TokKind::DblLit:
    return "float literal";
  case TokKind::StrLit:
    return "string literal";
  case TokKind::Ident:
    return "identifier";
  case TokKind::Variable:
    return "variable";
  case TokKind::KwFunction:
    return "'function'";
  case TokKind::KwClass:
    return "'class'";
  case TokKind::KwExtends:
    return "'extends'";
  case TokKind::KwProp:
    return "'prop'";
  case TokKind::KwMethod:
    return "'method'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwContinue:
    return "'continue'";
  case TokKind::KwTrue:
    return "'true'";
  case TokKind::KwFalse:
    return "'false'";
  case TokKind::KwNull:
    return "'null'";
  case TokKind::KwNew:
    return "'new'";
  case TokKind::KwThis:
    return "'$this'";
  case TokKind::KwVec:
    return "'vec'";
  case TokKind::KwDict:
    return "'dict'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semi:
    return "';'";
  case TokKind::Arrow:
    return "'->'";
  case TokKind::FatArrow:
    return "'=>'";
  case TokKind::Assign:
    return "'='";
  case TokKind::PlusAssign:
    return "'+='";
  case TokKind::MinusAssign:
    return "'-='";
  case TokKind::DotAssign:
    return "'.='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Dot:
    return "'.'";
  case TokKind::Not:
    return "'!'";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Ge:
    return "'>='";
  case TokKind::AndAnd:
    return "'&&'";
  case TokKind::OrOr:
    return "'||'";
  }
  unreachable("unhandled TokKind");
}

char Lexer::peek(size_t Ahead) const {
  if (Pos + Ahead >= Src.size())
    return '\0';
  return Src[Pos + Ahead];
}

char Lexer::advance() {
  char C = peek();
  if (C != '\0')
    ++Pos;
  if (C == '\n')
    ++Line;
  return C;
}

bool Lexer::match(char C) {
  if (peek() != C)
    return false;
  advance();
  return true;
}

Token Lexer::makeToken(TokKind K) {
  Token T;
  T.Kind = K;
  T.Line = Line;
  return T;
}

Token Lexer::errorToken(const char *Msg) {
  Token T = makeToken(TokKind::Error);
  T.Text = Msg;
  return T;
}

void Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/') && peek() != '\0')
        advance();
      if (peek() != '\0') {
        advance();
        advance();
      }
      continue;
    }
    return;
  }
}

Token Lexer::lexNumber() {
  size_t Start = Pos;
  while (std::isdigit(static_cast<unsigned char>(peek())))
    advance();
  bool IsDouble = false;
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsDouble = true;
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  std::string Text(Src.substr(Start, Pos - Start));
  Token T = makeToken(IsDouble ? TokKind::DblLit : TokKind::IntLit);
  T.Text = Text;
  if (IsDouble)
    T.DblValue = std::strtod(Text.c_str(), nullptr);
  else
    T.IntValue = std::strtoll(Text.c_str(), nullptr, 10);
  return T;
}

Token Lexer::lexString() {
  // Opening quote already consumed.
  std::string Value;
  for (;;) {
    char C = advance();
    if (C == '\0')
      return errorToken("unterminated string literal");
    if (C == '"')
      break;
    if (C == '\\') {
      char E = advance();
      switch (E) {
      case 'n':
        Value += '\n';
        break;
      case 't':
        Value += '\t';
        break;
      case '\\':
        Value += '\\';
        break;
      case '"':
        Value += '"';
        break;
      default:
        return errorToken("invalid escape sequence");
      }
      continue;
    }
    Value += C;
  }
  Token T = makeToken(TokKind::StrLit);
  T.Text = std::move(Value);
  return T;
}

Token Lexer::lexIdent() {
  size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  std::string Text(Src.substr(Start, Pos - Start));

  static const std::unordered_map<std::string, TokKind> Keywords = {
      {"function", TokKind::KwFunction}, {"class", TokKind::KwClass},
      {"extends", TokKind::KwExtends},   {"prop", TokKind::KwProp},
      {"method", TokKind::KwMethod},     {"if", TokKind::KwIf},
      {"else", TokKind::KwElse},         {"while", TokKind::KwWhile},
      {"return", TokKind::KwReturn},     {"break", TokKind::KwBreak},
      {"continue", TokKind::KwContinue}, {"true", TokKind::KwTrue},
      {"false", TokKind::KwFalse},       {"null", TokKind::KwNull},
      {"new", TokKind::KwNew},           {"vec", TokKind::KwVec},
      {"dict", TokKind::KwDict},
  };
  auto It = Keywords.find(Text);
  Token T = makeToken(It == Keywords.end() ? TokKind::Ident : It->second);
  T.Text = std::move(Text);
  return T;
}

Token Lexer::lexVariable() {
  // '$' already consumed.
  if (!std::isalpha(static_cast<unsigned char>(peek())) && peek() != '_')
    return errorToken("expected variable name after '$'");
  size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  std::string Name(Src.substr(Start, Pos - Start));
  if (Name == "this") {
    Token T = makeToken(TokKind::KwThis);
    T.Text = std::move(Name);
    return T;
  }
  Token T = makeToken(TokKind::Variable);
  T.Text = std::move(Name);
  return T;
}

Token Lexer::next() {
  skipTrivia();
  char C = peek();
  if (C == '\0')
    return makeToken(TokKind::Eof);

  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdent();

  advance();
  switch (C) {
  case '$':
    return lexVariable();
  case '"':
    return lexString();
  case '(':
    return makeToken(TokKind::LParen);
  case ')':
    return makeToken(TokKind::RParen);
  case '{':
    return makeToken(TokKind::LBrace);
  case '}':
    return makeToken(TokKind::RBrace);
  case '[':
    return makeToken(TokKind::LBracket);
  case ']':
    return makeToken(TokKind::RBracket);
  case ',':
    return makeToken(TokKind::Comma);
  case ';':
    return makeToken(TokKind::Semi);
  case '+':
    return makeToken(match('=') ? TokKind::PlusAssign : TokKind::Plus);
  case '-':
    if (match('>'))
      return makeToken(TokKind::Arrow);
    return makeToken(match('=') ? TokKind::MinusAssign : TokKind::Minus);
  case '*':
    return makeToken(TokKind::Star);
  case '/':
    return makeToken(TokKind::Slash);
  case '%':
    return makeToken(TokKind::Percent);
  case '.':
    return makeToken(match('=') ? TokKind::DotAssign : TokKind::Dot);
  case '!':
    return makeToken(match('=') ? TokKind::NotEq : TokKind::Not);
  case '=':
    if (match('='))
      return makeToken(TokKind::EqEq);
    if (match('>'))
      return makeToken(TokKind::FatArrow);
    return makeToken(TokKind::Assign);
  case '<':
    return makeToken(match('=') ? TokKind::Le : TokKind::Lt);
  case '>':
    return makeToken(match('=') ? TokKind::Ge : TokKind::Gt);
  case '&':
    if (match('&'))
      return makeToken(TokKind::AndAnd);
    return errorToken("expected '&&'");
  case '|':
    if (match('|'))
      return makeToken(TokKind::OrOr);
    return errorToken("expected '||'");
  default:
    return errorToken("unexpected character");
  }
}
