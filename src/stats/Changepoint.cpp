//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "stats/Changepoint.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace jumpstart;
using namespace jumpstart::stats;

namespace {

/// Linear-interpolated quantile of an already-sorted vector.
double sortedQuantile(const std::vector<double> &Sorted, double Q) {
  if (Sorted.empty())
    return 0;
  double Pos = Q * static_cast<double>(Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(Pos);
  size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Pos - static_cast<double>(Lo);
  return Sorted[Lo] * (1 - Frac) + Sorted[Hi] * Frac;
}

} // namespace

double jumpstart::stats::robustNoiseVariance(
    const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0;
  std::vector<double> AbsDiffs;
  AbsDiffs.reserve(Values.size() - 1);
  for (size_t I = 1; I < Values.size(); ++I)
    AbsDiffs.push_back(std::fabs(Values[I] - Values[I - 1]));
  std::sort(AbsDiffs.begin(), AbsDiffs.end());
  double Mad = sortedQuantile(AbsDiffs, 0.5);
  // |X - Y| for independent N(0, sigma^2) has median
  // sigma * sqrt(2) * probit(0.75) = sigma * 0.9539; invert it.
  double Sigma = Mad / 0.9539;
  return Sigma * Sigma;
}

std::vector<double>
jumpstart::stats::maskOutliers(const std::vector<double> &Values, double K) {
  if (Values.size() < 4)
    return Values;
  std::vector<double> Sorted = Values;
  std::sort(Sorted.begin(), Sorted.end());
  double Q1 = sortedQuantile(Sorted, 0.25);
  double Q3 = sortedQuantile(Sorted, 0.75);
  double Iqr = Q3 - Q1;
  double Lo = Q1 - K * Iqr;
  double Hi = Q3 + K * Iqr;
  std::vector<double> Masked = Values;
  for (double &V : Masked)
    V = std::min(std::max(V, Lo), Hi);
  return Masked;
}

Segmentation jumpstart::stats::detectChangepoints(
    const std::vector<double> &Values, const ChangepointParams &P) {
  Segmentation Result;
  const size_t N = Values.size();
  const size_t MinLen = std::max<uint32_t>(1, P.MinSegmentLength);

  // Prefix sums for O(1) segment SSE: SSE[a, b) = S2 - S1^2 / n.
  std::vector<double> Sum1(N + 1, 0), Sum2(N + 1, 0);
  for (size_t I = 0; I < N; ++I) {
    Sum1[I + 1] = Sum1[I] + Values[I];
    Sum2[I + 1] = Sum2[I] + Values[I] * Values[I];
  }
  auto SegCost = [&](size_t A, size_t B) {
    double S1 = Sum1[B] - Sum1[A];
    double S2 = Sum2[B] - Sum2[A];
    double Len = static_cast<double>(B - A);
    // Clamp tiny negative residue from cancellation.
    return std::max(0.0, S2 - S1 * S1 / Len);
  };
  auto SegMean = [&](size_t A, size_t B) {
    return (Sum1[B] - Sum1[A]) / static_cast<double>(B - A);
  };

  double Penalty = P.Penalty;
  if (Penalty < 0) {
    double Var = robustNoiseVariance(Values);
    if (Var <= 0) {
      // Noise-free series: any positive penalty below the smallest real
      // level shift's SSE works; derive one from the value spread so the
      // detector stays scale-equivariant (and pure steps are still
      // split, since a missed step costs O(n * shift^2)).
      double MinV = N ? *std::min_element(Values.begin(), Values.end()) : 0;
      double MaxV = N ? *std::max_element(Values.begin(), Values.end()) : 0;
      double Spread = MaxV - MinV;
      Penalty = Spread > 0 ? 1e-4 * Spread * Spread : 1.0;
    } else {
      Penalty = 2.0 * Var * std::log(std::max<double>(2.0, N));
    }
  }
  Result.PenaltyUsed = Penalty;

  if (N == 0)
    return Result;
  if (N < 2 * MinLen) {
    Result.Segments.push_back({0, N, SegMean(0, N)});
    Result.Cost = SegCost(0, N);
    return Result;
  }

  // PELT: F[t] = optimal cost of Values[0, t) (penalty charged per
  // changepoint, i.e. per segment after the first); Prev[t] = the start
  // of the last segment in that optimum.  Candidate pruning keeps the
  // scan near-linear; with SSE cost, a candidate whose partial cost
  // already exceeds F[t] can never win again (K = 0).
  constexpr double Inf = std::numeric_limits<double>::infinity();
  std::vector<double> F(N + 1, Inf);
  std::vector<size_t> Prev(N + 1, 0);
  F[0] = -Penalty;
  std::vector<size_t> Candidates{0};
  std::vector<size_t> Keep;

  for (size_t T = MinLen; T <= N; ++T) {
    double Best = Inf;
    size_t BestS = 0;
    for (size_t S : Candidates) {
      if (T - S < MinLen)
        continue;
      double Cost = F[S] + SegCost(S, T) + Penalty;
      // Strict < keeps the earliest admissible split on exact ties.
      if (Cost < Best) {
        Best = Cost;
        BestS = S;
      }
    }
    F[T] = Best;
    Prev[T] = BestS;

    Keep.clear();
    for (size_t S : Candidates)
      // Not-yet-admissible candidates must survive pruning: their cost
      // term is not defined at T.
      if (T - S < MinLen || F[S] + SegCost(S, T) <= F[T])
        Keep.push_back(S);
    Candidates.swap(Keep);
    // T becomes a candidate last segment start for future T'.
    Candidates.push_back(T);
  }

  // Backtrack the optimal segment starts.
  std::vector<size_t> Starts;
  for (size_t T = N; T > 0; T = Prev[T])
    Starts.push_back(Prev[T]);
  std::reverse(Starts.begin(), Starts.end());

  for (size_t I = 0; I < Starts.size(); ++I) {
    size_t Begin = Starts[I];
    size_t End = I + 1 < Starts.size() ? Starts[I + 1] : N;
    Result.Segments.push_back({Begin, End, SegMean(Begin, End)});
    Result.Cost += SegCost(Begin, End);
    if (Begin != 0)
      Result.Changepoints.push_back(Begin);
  }
  return Result;
}
