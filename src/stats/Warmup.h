//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Warmup-curve classification and multi-seed summary statistics.
///
/// Implements the measurement methodology of Barrett et al. ("Virtual
/// Machine Warmup Blows Hot and Cold") on top of the exact changepoint
/// detector: each (benchmark, seed) run's per-iteration series is
/// segmented and labelled
///
///   flat          -- every segment's mean is equivalent to the final
///                    (steady) segment's: steady from the start;
///   warmup        -- all non-equivalent earlier segments are *worse*
///                    than steady (the curve the paper assumes);
///   slowdown      -- all non-equivalent earlier segments are *better*:
///                    the run degraded into its final state;
///   inconsistent  -- mixed directions, or no final segment long enough
///                    to call steady at all.
///
/// A multi-seed summary then tallies the classes, reports the worst one
/// (the CI gate's degradation ordering: flat < warmup < slowdown <
/// inconsistent), and attaches a bootstrap confidence interval over the
/// per-seed steady-segment means.  Classification itself uses no RNG;
/// only the bootstrap draws random resamples, from an explicitly seeded
/// generator, so every number here is reproducible byte-for-byte.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_STATS_WARMUP_H
#define JUMPSTART_STATS_WARMUP_H

#include "stats/Changepoint.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jumpstart::stats {

/// Warmup classes, ordered from best to worst for CI gating.
enum class WarmupClass : uint8_t {
  Flat = 0,
  Warmup = 1,
  Slowdown = 2,
  Inconsistent = 3,
};

/// Snake-case name used in JSON blocks and counters files.
const char *warmupClassName(WarmupClass C);
/// Gate ordering: higher rank = worse.  A bench whose class rank rises
/// versus the committed snapshot hard-fails CHECK_PERF.
inline int warmupClassRank(WarmupClass C) { return static_cast<int>(C); }

/// Classification knobs.
struct ClassifyParams {
  ChangepointParams Changepoints;
  /// Metric direction: true for latency/allocations (smaller is
  /// better), false for throughput.
  bool LowerIsBetter = true;
  /// Segment means within RelTolerance * max(|mean|, |steady mean|) of
  /// the steady mean count as "already steady".
  double RelTolerance = 0.02;
  /// The final segment must cover at least this fraction of iterations
  /// to count as a steady state; otherwise the run is inconsistent.
  double MinSteadyFraction = 0.1;
  /// Winsorize to Tukey fences before detection (Barrett et al.'s
  /// outlier treatment): periodic spikes do not become segments.
  bool MaskOutliers = true;
};

/// One run's verdict.
struct Classification {
  WarmupClass Class = WarmupClass::Inconsistent;
  /// First iteration of steady state: the start of the earliest segment
  /// from which every later segment mean is equivalent to the final
  /// one.  0 for flat runs; the steady segment's start for inconsistent
  /// runs (best effort).
  size_t SteadyStart = 0;
  /// Mean of the final (steady) segment.
  double SteadyMean = 0;
  /// The underlying exact segmentation (of the masked series when
  /// ClassifyParams::MaskOutliers).
  Segmentation Seg;
};

/// Classifies one per-iteration series.  Deterministic, RNG-free.
Classification classifySeries(const std::vector<double> &Values,
                              const ClassifyParams &P = {});

/// Bootstrap CI knobs.  The seed is fixed and explicit: resampling is
/// the one random element of the analysis, and two runs over the same
/// inputs must emit identical intervals.
struct BootstrapParams {
  uint32_t Resamples = 1000;
  double Confidence = 0.95;
  uint64_t Seed = 0x57a75b007ULL;
};

/// A percentile-bootstrap confidence interval.
struct ConfidenceInterval {
  double Lo = 0;
  double Hi = 0;
  double Mean = 0;

  /// Gate predicate: this interval is entirely worse than \p Committed.
  /// Overlapping intervals are never flagged (the statistical
  /// replacement for the old single-number compare).
  bool disjointlyWorseThan(const ConfidenceInterval &Committed,
                           bool LowerIsBetter) const {
    return LowerIsBetter ? Lo > Committed.Hi : Hi < Committed.Lo;
  }
};

/// Percentile bootstrap over the mean of \p Values.
ConfidenceInterval bootstrapMeanCI(const std::vector<double> &Values,
                                   const BootstrapParams &P = {});

/// One seed's analyzed run.
struct RunAnalysis {
  uint64_t Seed = 0;
  Classification C;
};

/// The multi-seed summary that lands in BENCH_*.json `stats` blocks.
struct StatsSummary {
  /// Class tallies indexed by WarmupClass.
  uint32_t Tally[4] = {0, 0, 0, 0};
  WarmupClass WorstClass = WarmupClass::Flat;
  /// Bootstrap CI over the per-seed steady-segment means.
  ConfidenceInterval SteadyCI;
  /// Mean steady-state start iteration across seeds.
  double SteadyStartMean = 0;
  std::vector<RunAnalysis> Runs;
};

/// Classifies every (seed, series) run and aggregates.
StatsSummary
analyzeRuns(const std::vector<std::pair<uint64_t, std::vector<double>>>
                &SeedSeries,
            const ClassifyParams &CP = {}, const BootstrapParams &BP = {});

} // namespace jumpstart::stats

#endif // JUMPSTART_STATS_WARMUP_H
