//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "stats/Warmup.h"

#include "support/Random.h"

#include <algorithm>
#include <cmath>

using namespace jumpstart;
using namespace jumpstart::stats;

const char *jumpstart::stats::warmupClassName(WarmupClass C) {
  switch (C) {
  case WarmupClass::Flat:
    return "flat";
  case WarmupClass::Warmup:
    return "warmup";
  case WarmupClass::Slowdown:
    return "slowdown";
  case WarmupClass::Inconsistent:
    return "inconsistent";
  }
  return "inconsistent";
}

Classification jumpstart::stats::classifySeries(
    const std::vector<double> &Values, const ClassifyParams &P) {
  Classification R;
  if (Values.empty())
    return R; // inconsistent: nothing to call steady

  const std::vector<double> Series =
      P.MaskOutliers ? maskOutliers(Values) : Values;
  R.Seg = detectChangepoints(Series, P.Changepoints);
  const std::vector<Segment> &Segs = R.Seg.Segments;

  const Segment &Steady = Segs.back();
  R.SteadyMean = Steady.Mean;
  R.SteadyStart = Steady.Begin;

  // No steady state at all: the run was still moving when it ended.
  size_t MinSteadyLen = static_cast<size_t>(
      std::ceil(P.MinSteadyFraction * static_cast<double>(Series.size())));
  if (Steady.length() < std::max<size_t>(1, MinSteadyLen)) {
    R.Class = WarmupClass::Inconsistent;
    return R;
  }

  auto Equivalent = [&](double Mean) {
    double Scale = std::max(std::fabs(Mean), std::fabs(R.SteadyMean));
    return std::fabs(Mean - R.SteadyMean) <= P.RelTolerance * Scale;
  };
  // Worse = larger for latency-like metrics, smaller for throughput.
  auto Worse = [&](double Mean) {
    return P.LowerIsBetter ? Mean > R.SteadyMean : Mean < R.SteadyMean;
  };

  bool AnyWorse = false, AnyBetter = false;
  for (size_t I = 0; I + 1 < Segs.size(); ++I) {
    if (Equivalent(Segs[I].Mean))
      continue;
    (Worse(Segs[I].Mean) ? AnyWorse : AnyBetter) = true;
  }

  if (!AnyWorse && !AnyBetter)
    R.Class = WarmupClass::Flat;
  else if (AnyWorse && !AnyBetter)
    R.Class = WarmupClass::Warmup;
  else if (!AnyWorse && AnyBetter)
    R.Class = WarmupClass::Slowdown;
  else
    R.Class = WarmupClass::Inconsistent;

  // Steady state begins at the earliest segment from which every later
  // segment already sits at the steady mean (Barrett et al.'s "time to
  // reach steady state").
  if (R.Class == WarmupClass::Flat) {
    R.SteadyStart = 0;
  } else if (R.Class != WarmupClass::Inconsistent) {
    size_t Start = Steady.Begin;
    for (size_t I = Segs.size(); I-- > 0;) {
      if (!Equivalent(Segs[I].Mean))
        break;
      Start = Segs[I].Begin;
    }
    R.SteadyStart = Start;
  }
  return R;
}

ConfidenceInterval jumpstart::stats::bootstrapMeanCI(
    const std::vector<double> &Values, const BootstrapParams &P) {
  ConfidenceInterval CI;
  if (Values.empty())
    return CI;
  double Sum = 0;
  for (double V : Values)
    Sum += V;
  CI.Mean = Sum / static_cast<double>(Values.size());
  if (Values.size() == 1 || P.Resamples == 0) {
    CI.Lo = CI.Hi = CI.Mean;
    return CI;
  }

  Rng R(P.Seed);
  std::vector<double> Means;
  Means.reserve(P.Resamples);
  for (uint32_t B = 0; B < P.Resamples; ++B) {
    double S = 0;
    for (size_t I = 0; I < Values.size(); ++I)
      S += Values[R.nextBelow(Values.size())];
    Means.push_back(S / static_cast<double>(Values.size()));
  }
  std::sort(Means.begin(), Means.end());
  double Alpha = (1.0 - P.Confidence) / 2.0;
  auto At = [&](double Q) {
    double Pos = Q * static_cast<double>(Means.size() - 1);
    size_t Lo = static_cast<size_t>(Pos);
    size_t Hi = std::min(Lo + 1, Means.size() - 1);
    double Frac = Pos - static_cast<double>(Lo);
    return Means[Lo] * (1 - Frac) + Means[Hi] * Frac;
  };
  CI.Lo = At(Alpha);
  CI.Hi = At(1.0 - Alpha);
  return CI;
}

StatsSummary jumpstart::stats::analyzeRuns(
    const std::vector<std::pair<uint64_t, std::vector<double>>> &SeedSeries,
    const ClassifyParams &CP, const BootstrapParams &BP) {
  StatsSummary S;
  std::vector<double> SteadyMeans;
  double StartSum = 0;
  for (const auto &[Seed, Series] : SeedSeries) {
    RunAnalysis Run;
    Run.Seed = Seed;
    Run.C = classifySeries(Series, CP);
    ++S.Tally[static_cast<size_t>(Run.C.Class)];
    if (warmupClassRank(Run.C.Class) > warmupClassRank(S.WorstClass))
      S.WorstClass = Run.C.Class;
    SteadyMeans.push_back(Run.C.SteadyMean);
    StartSum += static_cast<double>(Run.C.SteadyStart);
    S.Runs.push_back(std::move(Run));
  }
  if (!S.Runs.empty())
    S.SteadyStartMean = StartSum / static_cast<double>(S.Runs.size());
  S.SteadyCI = bootstrapMeanCI(SteadyMeans, BP);
  return S;
}
