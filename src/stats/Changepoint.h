//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact changepoint detection over per-iteration metric series.
///
/// The detector is the foundation of the repository's warmup-curve
/// analysis (following Barrett et al., "Virtual Machine Warmup Blows Hot
/// and Cold"): it segments a series of per-iteration measurements into
/// mean-stable pieces by exactly minimizing
///
///     sum over segments of SSE(segment)  +  Penalty * (#changepoints)
///
/// via the PELT dynamic program (Killick et al. 2012) with a minimum
/// segment length.  "Exact" matters for CI: the optimum is unique up to
/// deterministic tie-breaking (earliest split wins), the algorithm uses
/// no randomness, and the same series always yields the same
/// segmentation -- so the `stats` blocks in BENCH_*.json are
/// byte-reproducible and ci/check.sh can diff them across runs.
///
/// The default penalty is data-derived (a BIC-style 2*sigma^2*log n with
/// sigma estimated robustly from successive differences), which makes the
/// segmentation equivariant under positive scaling of the metric: the
/// detected boundaries for c*y are those for y, for any c > 0.  The
/// classifier's property tests rely on this.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_STATS_CHANGEPOINT_H
#define JUMPSTART_STATS_CHANGEPOINT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jumpstart::stats {

/// Detection knobs.
struct ChangepointParams {
  /// Cost charged per changepoint.  Negative (the default) derives a
  /// BIC-style penalty from the data itself: 2 * sigma^2 * log(n), with
  /// sigma^2 estimated from the median absolute successive difference
  /// (robust to the very level shifts being detected).  An explicit
  /// value is used as-is -- tests with known noise pass one.
  double Penalty = -1;
  /// Minimum points per segment.  Keeps single-sample outliers from
  /// becoming their own segments.
  uint32_t MinSegmentLength = 3;
};

/// One mean-stable segment [Begin, End) of the input series.
struct Segment {
  size_t Begin = 0;
  size_t End = 0;
  double Mean = 0;

  size_t length() const { return End - Begin; }
};

/// An exact segmentation of a series.
struct Segmentation {
  /// Segment start indices, excluding 0: Changepoints[i] is the first
  /// index of segment i+1.  Empty means the series is one segment.
  std::vector<size_t> Changepoints;
  /// The segments in order; covers [0, n) exactly.  Empty only for an
  /// empty input series.
  std::vector<Segment> Segments;
  /// Total within-segment SSE of the optimal segmentation.
  double Cost = 0;
  /// The penalty actually charged per changepoint (data-derived when
  /// ChangepointParams::Penalty was negative).
  double PenaltyUsed = 0;
};

/// Robust noise-variance estimate for \p Values: the squared, scaled
/// median absolute successive difference.  Level shifts contribute only
/// a few of the n-1 differences, so the median sees mostly noise.
/// \returns 0 for series with fewer than 2 points or no noise.
double robustNoiseVariance(const std::vector<double> &Values);

/// Winsorizes \p Values to the Tukey fences [Q1 - K*IQR, Q3 + K*IQR]
/// computed over the whole series -- the outlier treatment Barrett et
/// al. apply before changepoint analysis, so that a periodic GC-style
/// spike is not mistaken for a level shift.  Quartiles are order
/// statistics, so the masking commutes with positive scaling.
std::vector<double> maskOutliers(const std::vector<double> &Values,
                                 double K = 3.0);

/// Exactly segments \p Values.  Deterministic: no RNG, and cost ties
/// break toward the earliest admissible split.
Segmentation detectChangepoints(const std::vector<double> &Values,
                                const ChangepointParams &P = {});

} // namespace jumpstart::stats

#endif // JUMPSTART_STATS_CHANGEPOINT_H
