//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A weighted, directed call graph for function-sorting (paper section
/// V-B).  Nodes are functions with a code size and a hotness (sample
/// count); arcs carry call frequencies.
///
/// Jump-Start's contribution here is *where the arcs come from*: before
/// Jump-Start the graph was built from tier-1 profiling, which has no
/// inlining and therefore misrepresents the tier-2 code; with Jump-Start,
/// seeders instrument the entries of optimized functions and count
/// caller/callee pairs, producing a graph that matches what actually runs.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_LAYOUT_CALLGRAPH_H
#define JUMPSTART_LAYOUT_CALLGRAPH_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace jumpstart::layout {

/// One node (function) in the call graph.
struct CgNode {
  uint32_t SizeBytes = 0;
  uint64_t Samples = 0;
};

/// One weighted arc caller -> callee.
struct CgArc {
  uint32_t Caller = 0;
  uint32_t Callee = 0;
  uint64_t Weight = 0;
};

/// The call-graph container.  Node ids are dense and supplied by the
/// caller (translation ids or FuncId raws).
class CallGraph {
public:
  /// Ensures node \p Id exists and sets its attributes.
  void setNode(uint32_t Id, uint32_t SizeBytes, uint64_t Samples);

  /// Accumulates weight onto arc \p Caller -> \p Callee.
  void addArc(uint32_t Caller, uint32_t Callee, uint64_t Weight);

  size_t numNodes() const { return Nodes.size(); }
  const CgNode &node(uint32_t Id) const { return Nodes[Id]; }
  const std::vector<CgArc> &arcs() const { return Arcs; }

  /// \returns the hottest caller of \p Callee (the incoming arc with the
  /// largest weight), or ~0u when it has none.
  uint32_t hottestCaller(uint32_t Callee) const;

private:
  std::vector<CgNode> Nodes;
  std::vector<CgArc> Arcs;
  std::unordered_map<uint64_t, size_t> ArcIndex;
};

} // namespace jumpstart::layout

#endif // JUMPSTART_LAYOUT_CALLGRAPH_H
