//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "layout/CallGraph.h"

#include "support/Assert.h"

using namespace jumpstart;
using namespace jumpstart::layout;

void CallGraph::setNode(uint32_t Id, uint32_t SizeBytes, uint64_t Samples) {
  if (Nodes.size() <= Id)
    Nodes.resize(Id + 1);
  Nodes[Id].SizeBytes = SizeBytes;
  Nodes[Id].Samples = Samples;
}

void CallGraph::addArc(uint32_t Caller, uint32_t Callee, uint64_t Weight) {
  if (Nodes.size() <= Caller)
    Nodes.resize(Caller + 1);
  if (Nodes.size() <= Callee)
    Nodes.resize(Callee + 1);
  uint64_t Key = (static_cast<uint64_t>(Caller) << 32) | Callee;
  auto It = ArcIndex.find(Key);
  if (It != ArcIndex.end()) {
    Arcs[It->second].Weight += Weight;
    return;
  }
  ArcIndex.emplace(Key, Arcs.size());
  Arcs.push_back(CgArc{Caller, Callee, Weight});
}

uint32_t CallGraph::hottestCaller(uint32_t Callee) const {
  uint32_t Best = ~0u;
  uint64_t BestWeight = 0;
  for (const CgArc &A : Arcs) {
    if (A.Callee != Callee || A.Caller == A.Callee)
      continue;
    if (A.Weight > BestWeight) {
      BestWeight = A.Weight;
      Best = A.Caller;
    }
  }
  return Best;
}
