//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hot/cold code splitting.
///
/// HHVM applies basic-block layout and hot/cold splitting together, driven
/// by the same profile (paper section V-A).  Blocks whose execution count
/// falls below a fraction of the function entry count are moved to a cold
/// code area; the hot area keeps the Ext-TSP order of the remaining
/// blocks.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_LAYOUT_HOTCOLD_H
#define JUMPSTART_LAYOUT_HOTCOLD_H

#include "layout/Cfg.h"

#include <vector>

namespace jumpstart::layout {

/// Result of splitting a laid-out function.
struct HotColdSplit {
  /// Block ids placed in the hot area, in layout order.
  std::vector<uint32_t> Hot;
  /// Block ids relegated to the cold area, in layout order.
  std::vector<uint32_t> Cold;
};

/// Splits \p Order into hot and cold parts.  A block is cold when its
/// weight is below \p ColdRatio times the entry block's weight (and the
/// entry itself is always hot).  With a zero entry weight, everything
/// stays hot.
HotColdSplit splitHotCold(const Cfg &G, const std::vector<uint32_t> &Order,
                          double ColdRatio = 0.01);

} // namespace jumpstart::layout

#endif // JUMPSTART_LAYOUT_HOTCOLD_H
