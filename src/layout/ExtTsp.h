//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ext-TSP basic-block reordering (Newell & Pupyrev, "Improved Basic Block
/// Reordering", IEEE TC 2020) -- the algorithm HHVM's JIT uses for block
/// layout and that Jump-Start feeds with accurate Vasm-level counters
/// (paper section V-A).
///
/// The Ext-TSP score extends simple fallthrough maximization: an edge
/// contributes its full weight when laid out as a fallthrough, and a
/// partial weight when it becomes a short forward or backward jump, decaying
/// linearly with jump distance.  The optimizer greedily merges block chains
/// by best score gain, considering multiple merge shapes (including
/// splitting a chain), then orders the final chains by density.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_LAYOUT_EXTTSP_H
#define JUMPSTART_LAYOUT_EXTTSP_H

#include "layout/Cfg.h"

#include <vector>

namespace jumpstart::layout {

/// Ext-TSP scoring parameters (values from the paper).
struct ExtTspParams {
  double FallthroughWeight = 1.0;
  double ForwardWeight = 0.1;
  double BackwardWeight = 0.1;
  uint32_t ForwardDistance = 1024;
  uint32_t BackwardDistance = 640;
};

/// Computes the Ext-TSP score of laying \p Cfg out in \p Order (a
/// permutation of block ids).  Higher is better.
double extTspScore(const Cfg &G, const std::vector<uint32_t> &Order,
                   const ExtTspParams &Params = ExtTspParams());

/// Computes a block order maximizing the Ext-TSP score, starting from the
/// entry block (block 0 always stays first).
std::vector<uint32_t> extTspOrder(const Cfg &G,
                                  const ExtTspParams &Params = ExtTspParams());

} // namespace jumpstart::layout

#endif // JUMPSTART_LAYOUT_EXTTSP_H
