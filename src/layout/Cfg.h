//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A weighted control-flow graph over which the code-layout optimizations
/// run.  Block ids are dense; block 0 is the entry.  Weights are execution
/// counts (block weights) and transition counts (edge weights), which in
/// the full system come from the Vasm block counters the Jump-Start
/// seeders collect (paper section V-A).
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_LAYOUT_CFG_H
#define JUMPSTART_LAYOUT_CFG_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jumpstart::layout {

/// One block of a layout CFG.
struct CfgBlock {
  uint32_t SizeBytes = 0;
  uint64_t Weight = 0;
};

/// One directed edge (jump or fallthrough possibility) with its taken
/// count.
struct CfgEdge {
  uint32_t Src = 0;
  uint32_t Dst = 0;
  uint64_t Weight = 0;
};

/// The CFG container.  Construction order defines the "original" layout
/// (the order the compiler emitted blocks in).
class Cfg {
public:
  /// Adds a block; \returns its id.
  uint32_t addBlock(uint32_t SizeBytes, uint64_t Weight = 0) {
    Blocks.push_back(CfgBlock{SizeBytes, Weight});
    return static_cast<uint32_t>(Blocks.size() - 1);
  }

  /// Adds (or accumulates onto an existing) edge Src -> Dst.
  void addEdge(uint32_t Src, uint32_t Dst, uint64_t Weight);

  size_t numBlocks() const { return Blocks.size(); }
  const CfgBlock &block(uint32_t Id) const { return Blocks[Id]; }
  CfgBlock &blockMutable(uint32_t Id) { return Blocks[Id]; }
  const std::vector<CfgEdge> &edges() const { return Edges; }

  /// Sets the execution weight of \p Id (used when injecting the profile
  /// counters from a Jump-Start package right before layout).
  void setBlockWeight(uint32_t Id, uint64_t W) { Blocks[Id].Weight = W; }

  /// Total bytes across all blocks.
  uint64_t totalBytes() const;

private:
  std::vector<CfgBlock> Blocks;
  std::vector<CfgEdge> Edges;
};

} // namespace jumpstart::layout

#endif // JUMPSTART_LAYOUT_CFG_H
