//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "layout/FunctionSort.h"

#include "support/Assert.h"

#include <algorithm>
#include <numeric>

using namespace jumpstart;
using namespace jumpstart::layout;

namespace {

/// Shared cluster bookkeeping for both sorting algorithms.
struct ClusterSet {
  explicit ClusterSet(const CallGraph &G) : G(G) {
    size_t N = G.numNodes();
    ClusterOf.resize(N);
    Clusters.resize(N);
    for (uint32_t I = 0; I < N; ++I) {
      ClusterOf[I] = I;
      Clusters[I] = {I};
    }
  }

  uint64_t bytes(uint32_t C) const {
    uint64_t Total = 0;
    for (uint32_t N : Clusters[C])
      Total += G.node(N).SizeBytes;
    return Total;
  }

  uint64_t samples(uint32_t C) const {
    uint64_t Total = 0;
    for (uint32_t N : Clusters[C])
      Total += G.node(N).Samples;
    return Total;
  }

  /// Appends cluster \p B after cluster \p A; B empties.
  void merge(uint32_t A, uint32_t B) {
    assert(A != B && "cannot merge a cluster with itself");
    for (uint32_t N : Clusters[B])
      ClusterOf[N] = A;
    Clusters[A].insert(Clusters[A].end(), Clusters[B].begin(),
                       Clusters[B].end());
    Clusters[B].clear();
  }

  /// Emits all nonempty clusters ordered by \p Less, concatenated.
  template <typename Cmp> std::vector<uint32_t> emit(Cmp Less) const {
    std::vector<uint32_t> Ids;
    for (uint32_t C = 0; C < Clusters.size(); ++C)
      if (!Clusters[C].empty())
        Ids.push_back(C);
    std::stable_sort(Ids.begin(), Ids.end(), Less);
    std::vector<uint32_t> Order;
    Order.reserve(G.numNodes());
    for (uint32_t C : Ids)
      for (uint32_t N : Clusters[C])
        Order.push_back(N);
    return Order;
  }

  const CallGraph &G;
  std::vector<uint32_t> ClusterOf;
  std::vector<std::vector<uint32_t>> Clusters;
};

} // namespace

std::vector<uint32_t> jumpstart::layout::c3Order(const CallGraph &G,
                                                 const C3Params &Params) {
  ClusterSet CS(G);

  // Visit functions in decreasing hotness (ties by id for determinism).
  std::vector<uint32_t> ByHotness(G.numNodes());
  std::iota(ByHotness.begin(), ByHotness.end(), 0u);
  std::stable_sort(ByHotness.begin(), ByHotness.end(),
                   [&](uint32_t A, uint32_t B) {
                     return G.node(A).Samples > G.node(B).Samples;
                   });

  for (uint32_t F : ByHotness) {
    if (G.node(F).Samples == 0)
      break; // the rest are cold; leave them in their own clusters
    uint32_t Caller = G.hottestCaller(F);
    if (Caller == ~0u)
      continue;
    uint32_t CallerCluster = CS.ClusterOf[Caller];
    uint32_t CalleeCluster = CS.ClusterOf[F];
    if (CallerCluster == CalleeCluster)
      continue;
    // C3 appends the callee's cluster to the caller's, growing the call
    // chain, but never beyond the size cap (past that, locality gains
    // vanish and the merge only hurts the density sort).
    if (CS.bytes(CallerCluster) + CS.bytes(CalleeCluster) >
        Params.MaxClusterBytes)
      continue;
    CS.merge(CallerCluster, CalleeCluster);
  }

  // Final order: clusters by density = samples / bytes, descending.
  return CS.emit([&](uint32_t A, uint32_t B) {
    double DensA = static_cast<double>(CS.samples(A)) /
                   static_cast<double>(std::max<uint64_t>(1, CS.bytes(A)));
    double DensB = static_cast<double>(CS.samples(B)) /
                   static_cast<double>(std::max<uint64_t>(1, CS.bytes(B)));
    return DensA > DensB;
  });
}

std::vector<uint32_t> jumpstart::layout::pettisHansenOrder(const CallGraph &G) {
  ClusterSet CS(G);

  // Undirected arc weights, heaviest first.
  struct UArc {
    uint32_t A;
    uint32_t B;
    uint64_t W;
  };
  std::vector<UArc> UArcs;
  for (const CgArc &Arc : G.arcs()) {
    if (Arc.Caller == Arc.Callee)
      continue;
    UArcs.push_back(UArc{Arc.Caller, Arc.Callee, Arc.Weight});
  }
  std::stable_sort(UArcs.begin(), UArcs.end(),
                   [](const UArc &X, const UArc &Y) { return X.W > Y.W; });

  for (const UArc &Arc : UArcs) {
    uint32_t CA = CS.ClusterOf[Arc.A];
    uint32_t CB = CS.ClusterOf[Arc.B];
    if (CA != CB)
      CS.merge(CA, CB);
  }

  // Clusters by total samples, descending.
  return CS.emit([&](uint32_t A, uint32_t B) {
    return CS.samples(A) > CS.samples(B);
  });
}

std::vector<uint32_t> jumpstart::layout::originalOrder(const CallGraph &G) {
  std::vector<uint32_t> Order(G.numNodes());
  std::iota(Order.begin(), Order.end(), 0u);
  return Order;
}

double jumpstart::layout::weightedCallDistance(
    const CallGraph &G, const std::vector<uint32_t> &Order) {
  assert(Order.size() == G.numNodes() && "order must cover all nodes");
  std::vector<uint64_t> Start(G.numNodes(), 0);
  uint64_t Offset = 0;
  for (uint32_t N : Order) {
    Start[N] = Offset;
    Offset += G.node(N).SizeBytes;
  }
  double WeightedDist = 0;
  double TotalWeight = 0;
  for (const CgArc &A : G.arcs()) {
    if (A.Caller == A.Callee)
      continue;
    uint64_t DA = Start[A.Caller];
    uint64_t DB = Start[A.Callee];
    uint64_t Dist = DA > DB ? DA - DB : DB - DA;
    WeightedDist +=
        static_cast<double>(A.Weight) * static_cast<double>(Dist);
    TotalWeight += static_cast<double>(A.Weight);
  }
  if (TotalWeight == 0)
    return 0;
  return WeightedDist / TotalWeight;
}
