//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "layout/HotCold.h"

#include "support/Assert.h"

using namespace jumpstart;
using namespace jumpstart::layout;

HotColdSplit jumpstart::layout::splitHotCold(
    const Cfg &G, const std::vector<uint32_t> &Order, double ColdRatio) {
  assert(Order.size() == G.numBlocks() && "order must cover all blocks");
  HotColdSplit Result;
  if (Order.empty())
    return Result;

  uint64_t EntryWeight = G.block(0).Weight;
  double Threshold = static_cast<double>(EntryWeight) * ColdRatio;
  for (uint32_t Block : Order) {
    bool IsCold = Block != 0 && EntryWeight > 0 &&
                  static_cast<double>(G.block(Block).Weight) < Threshold;
    if (IsCold)
      Result.Cold.push_back(Block);
    else
      Result.Hot.push_back(Block);
  }
  return Result;
}
