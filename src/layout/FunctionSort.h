//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function-sorting algorithms over a weighted call graph.
///
/// C3 (call-chain clustering; Ottoni & Maher, "Optimizing Function
/// Placement for Large-Scale Data-Center Applications", CGO 2017) is the
/// algorithm HHVM uses to order optimized translations in the code cache
/// (paper section V-B).  Pettis-Hansen function ordering (PLDI 1990) is
/// implemented as the classical baseline for the micro-benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_LAYOUT_FUNCTIONSORT_H
#define JUMPSTART_LAYOUT_FUNCTIONSORT_H

#include "layout/CallGraph.h"

#include <vector>

namespace jumpstart::layout {

/// C3 parameters.
struct C3Params {
  /// Clusters stop growing past this size (the CGO'17 paper uses the huge
  /// page size; scaled down to our simulated code cache).
  uint64_t MaxClusterBytes = 64u << 10;
};

/// Computes a C3 linear order of all node ids.
///
/// Functions are visited in decreasing hotness; each function's cluster is
/// appended after its hottest caller's cluster when the merge respects the
/// size cap.  Final clusters are sorted by density (hotness / size).
std::vector<uint32_t> c3Order(const CallGraph &G,
                              const C3Params &Params = C3Params());

/// Pettis-Hansen function ordering: repeatedly merges the two clusters
/// joined by the heaviest remaining arc (undirected), concatenating them
/// in the orientation that puts the heavier endpoints closer together.
std::vector<uint32_t> pettisHansenOrder(const CallGraph &G);

/// The trivial baseline: nodes in id (creation) order.
std::vector<uint32_t> originalOrder(const CallGraph &G);

/// Evaluates an order: the weighted average distance (in bytes) between
/// the starts of caller and callee over all arcs.  Lower is better
/// (i-cache / i-TLB locality proxy).
double weightedCallDistance(const CallGraph &G,
                            const std::vector<uint32_t> &Order);

} // namespace jumpstart::layout

#endif // JUMPSTART_LAYOUT_FUNCTIONSORT_H
