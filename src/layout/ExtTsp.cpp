//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "layout/ExtTsp.h"

#include "support/Assert.h"

#include <algorithm>
#include <numeric>

using namespace jumpstart;
using namespace jumpstart::layout;

void Cfg::addEdge(uint32_t Src, uint32_t Dst, uint64_t Weight) {
  assert(Src < Blocks.size() && Dst < Blocks.size() && "edge out of range");
  for (CfgEdge &E : Edges) {
    if (E.Src == Src && E.Dst == Dst) {
      E.Weight += Weight;
      return;
    }
  }
  Edges.push_back(CfgEdge{Src, Dst, Weight});
}

uint64_t Cfg::totalBytes() const {
  uint64_t Total = 0;
  for (const CfgBlock &B : Blocks)
    Total += B.SizeBytes;
  return Total;
}

namespace {

/// Scores one edge given source end offset and destination start offset.
double scoreEdge(uint64_t Weight, uint64_t SrcEnd, uint64_t DstStart,
                 const ExtTspParams &P) {
  double W = static_cast<double>(Weight);
  if (DstStart == SrcEnd)
    return P.FallthroughWeight * W;
  if (DstStart > SrcEnd) {
    uint64_t Dist = DstStart - SrcEnd;
    if (Dist <= P.ForwardDistance)
      return P.ForwardWeight * W *
             (1.0 - static_cast<double>(Dist) /
                        static_cast<double>(P.ForwardDistance));
    return 0.0;
  }
  uint64_t Dist = SrcEnd - DstStart;
  if (Dist <= P.BackwardDistance)
    return P.BackwardWeight * W *
           (1.0 - static_cast<double>(Dist) /
                      static_cast<double>(P.BackwardDistance));
  return 0.0;
}

/// The greedy chain-merging optimizer.
class ExtTspSolver {
public:
  ExtTspSolver(const Cfg &G, const ExtTspParams &P) : G(G), P(P) {
    size_t N = G.numBlocks();
    OutEdges.resize(N);
    for (const CfgEdge &E : G.edges()) {
      if (E.Src != E.Dst) // self-loops score nothing under any layout
        OutEdges[E.Src].push_back(E);
    }
    ChainOf.resize(N);
    for (uint32_t B = 0; B < N; ++B) {
      Chains.push_back({B});
      ChainOf[B] = B;
    }
  }

  std::vector<uint32_t> solve();

private:
  /// Ext-TSP score of the blocks in \p Chain laid out consecutively,
  /// counting only edges internal to the chain.
  double chainScore(const std::vector<uint32_t> &Chain) const;

  /// Best merged form of chains A and B and its score; considers A+B,
  /// B+A, and (for short A) splitting A around B.
  double bestMerge(uint32_t A, uint32_t B,
                   std::vector<uint32_t> &MergedOut) const;

  uint64_t chainBytes(const std::vector<uint32_t> &Chain) const {
    uint64_t Total = 0;
    for (uint32_t Block : Chain)
      Total += G.block(Block).SizeBytes;
    return Total;
  }

  uint64_t chainWeight(const std::vector<uint32_t> &Chain) const {
    uint64_t Total = 0;
    for (uint32_t Block : Chain)
      Total += G.block(Block).Weight;
    return Total;
  }

  const Cfg &G;
  const ExtTspParams &P;
  std::vector<std::vector<CfgEdge>> OutEdges;
  std::vector<std::vector<uint32_t>> Chains; ///< empty = absorbed
  std::vector<uint32_t> ChainOf;             ///< block -> chain index

  /// Splitting is only attempted on chains at most this many blocks long
  /// (bounds the cubic factor; matches the spirit of the reference
  /// implementation's chain-split threshold).
  static constexpr size_t kSplitLimit = 32;
};

double ExtTspSolver::chainScore(const std::vector<uint32_t> &Chain) const {
  if (Chain.size() < 2)
    return 0.0;
  // Block start offsets within the chain.
  // (Position map is small; linear scan keeps this allocation-free for
  // typical chains.)
  double Score = 0.0;
  for (size_t I = 0; I < Chain.size(); ++I) {
    uint64_t SrcStart = 0;
    for (size_t J = 0; J < I; ++J)
      SrcStart += G.block(Chain[J]).SizeBytes;
    uint64_t SrcEnd = SrcStart + G.block(Chain[I]).SizeBytes;
    for (const CfgEdge &E : OutEdges[Chain[I]]) {
      // Find Dst within this chain.
      uint64_t DstStart = 0;
      bool Found = false;
      for (uint32_t Block : Chain) {
        if (Block == E.Dst) {
          Found = true;
          break;
        }
        DstStart += G.block(Block).SizeBytes;
      }
      if (Found)
        Score += scoreEdge(E.Weight, SrcEnd, DstStart, P);
    }
  }
  return Score;
}

double ExtTspSolver::bestMerge(uint32_t A, uint32_t B,
                               std::vector<uint32_t> &MergedOut) const {
  const std::vector<uint32_t> &CA = Chains[A];
  const std::vector<uint32_t> &CB = Chains[B];
  double Best = -1.0;

  auto Consider = [&](std::vector<uint32_t> Candidate) {
    // The entry block must remain first in whatever chain holds it.
    if (ChainOf[0] == A || ChainOf[0] == B) {
      if (Candidate.front() != 0 &&
          std::find(Candidate.begin(), Candidate.end(), 0u) !=
              Candidate.end())
        return;
    }
    double Score = chainScore(Candidate);
    if (Score > Best) {
      Best = Score;
      MergedOut = std::move(Candidate);
    }
  };

  // Concatenations.
  {
    std::vector<uint32_t> AB = CA;
    AB.insert(AB.end(), CB.begin(), CB.end());
    Consider(std::move(AB));
  }
  {
    std::vector<uint32_t> BA = CB;
    BA.insert(BA.end(), CA.begin(), CA.end());
    Consider(std::move(BA));
  }
  // Splits of A around B: A1 + B + A2.
  if (CA.size() >= 2 && CA.size() <= kSplitLimit) {
    for (size_t Split = 1; Split < CA.size(); ++Split) {
      std::vector<uint32_t> Candidate(CA.begin(), CA.begin() + Split);
      Candidate.insert(Candidate.end(), CB.begin(), CB.end());
      Candidate.insert(Candidate.end(), CA.begin() + Split, CA.end());
      Consider(std::move(Candidate));
    }
  }
  return Best;
}

std::vector<uint32_t> ExtTspSolver::solve() {
  // Greedily merge the pair of chains whose best merged form yields the
  // largest score gain, until no merge helps.
  for (;;) {
    double BestGain = 1e-9;
    uint32_t BestA = 0;
    uint32_t BestB = 0;
    std::vector<uint32_t> BestMerged;

    // Candidate pairs are chains connected by at least one edge.
    for (uint32_t Src = 0; Src < G.numBlocks(); ++Src) {
      for (const CfgEdge &E : OutEdges[Src]) {
        uint32_t A = ChainOf[E.Src];
        uint32_t B = ChainOf[E.Dst];
        if (A == B)
          continue;
        std::vector<uint32_t> Merged;
        double MergedScore = bestMerge(A, B, Merged);
        if (Merged.empty())
          continue;
        double Gain =
            MergedScore - chainScore(Chains[A]) - chainScore(Chains[B]);
        if (Gain > BestGain) {
          BestGain = Gain;
          BestA = A;
          BestB = B;
          BestMerged = std::move(Merged);
        }
      }
    }
    if (BestMerged.empty())
      break;
    // Apply: A absorbs the merged chain, B empties.
    Chains[BestA] = std::move(BestMerged);
    Chains[BestB].clear();
    for (uint32_t Block : Chains[BestA])
      ChainOf[Block] = BestA;
  }

  // Order chains: the entry chain first, the rest by density (hotness per
  // byte), ties broken by original index for determinism.
  std::vector<uint32_t> ChainIds;
  for (uint32_t C = 0; C < Chains.size(); ++C)
    if (!Chains[C].empty())
      ChainIds.push_back(C);

  uint32_t EntryChain = ChainOf[0];
  std::stable_sort(ChainIds.begin(), ChainIds.end(),
                   [&](uint32_t A, uint32_t B) {
                     if (A == EntryChain)
                       return true;
                     if (B == EntryChain)
                       return false;
                     uint64_t BytesA = std::max<uint64_t>(1, chainBytes(Chains[A]));
                     uint64_t BytesB = std::max<uint64_t>(1, chainBytes(Chains[B]));
                     double DensA = static_cast<double>(chainWeight(Chains[A])) /
                                    static_cast<double>(BytesA);
                     double DensB = static_cast<double>(chainWeight(Chains[B])) /
                                    static_cast<double>(BytesB);
                     return DensA > DensB;
                   });

  std::vector<uint32_t> Order;
  Order.reserve(G.numBlocks());
  for (uint32_t C : ChainIds)
    for (uint32_t Block : Chains[C])
      Order.push_back(Block);
  return Order;
}

} // namespace

double jumpstart::layout::extTspScore(const Cfg &G,
                                      const std::vector<uint32_t> &Order,
                                      const ExtTspParams &Params) {
  assert(Order.size() == G.numBlocks() && "order must cover all blocks");
  std::vector<uint64_t> Start(G.numBlocks(), 0);
  uint64_t Offset = 0;
  for (uint32_t Block : Order) {
    Start[Block] = Offset;
    Offset += G.block(Block).SizeBytes;
  }
  double Score = 0.0;
  for (const CfgEdge &E : G.edges()) {
    if (E.Src == E.Dst)
      continue;
    uint64_t SrcEnd = Start[E.Src] + G.block(E.Src).SizeBytes;
    Score += scoreEdge(E.Weight, SrcEnd, Start[E.Dst], Params);
  }
  return Score;
}

std::vector<uint32_t>
jumpstart::layout::extTspOrder(const Cfg &G, const ExtTspParams &Params) {
  if (G.numBlocks() == 0)
    return {};
  if (G.numBlocks() == 1)
    return {0};
  ExtTspSolver Solver(G, Params);
  return Solver.solve();
}
