//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compilation unit (one source file) in the bytecode repo.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_BYTECODE_UNIT_H
#define JUMPSTART_BYTECODE_UNIT_H

#include "bytecode/Ids.h"

#include <string>
#include <vector>

namespace jumpstart::bc {

/// One source file's contribution to the repo: the functions and classes
/// it defines.  Units are the granularity at which the VM lazily loads
/// metadata into memory (and which Jump-Start's profile package lists for
/// preloading -- paper section IV-B category 1).
struct Unit {
  UnitId Id;
  std::string Name;
  std::vector<FuncId> Funcs;
  std::vector<ClassId> Classes;
};

} // namespace jumpstart::bc

#endif // JUMPSTART_BYTECODE_UNIT_H
