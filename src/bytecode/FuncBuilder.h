//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bytecode emitter with forward-label support, used by the frontend's
/// code generator and by tests that hand-assemble functions.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_BYTECODE_FUNCBUILDER_H
#define JUMPSTART_BYTECODE_FUNCBUILDER_H

#include "bytecode/Function.h"

#include <cstdint>
#include <vector>

namespace jumpstart::bc {

/// Emits bytecode into a Function, resolving branch targets via labels.
///
/// Typical usage:
/// \code
///   FuncBuilder B(F);
///   auto Else = B.newLabel();
///   B.emit(Op::GetL, 0);
///   B.emitJump(Op::JmpZ, Else);
///   ...
///   B.bind(Else);
///   ...
///   B.finish();
/// \endcode
class FuncBuilder {
public:
  /// An opaque label handle.
  struct Label {
    uint32_t Index;
  };

  explicit FuncBuilder(Function &F) : F(F) {}

  /// Allocates a fresh, unbound label.
  Label newLabel();

  /// Binds \p L to the next instruction to be emitted.
  void bind(Label L);

  /// Appends a non-branch instruction.
  void emit(Op O, int64_t ImmA = 0, int64_t ImmB = 0);

  /// Appends a branch to \p L; the target immediate is patched when the
  /// label is bound (or already-bound labels resolve immediately).
  void emitJump(Op O, Label L);

  /// Allocates a new local slot and returns its index.
  uint32_t newLocal();

  /// Index the next emitted instruction will have.
  uint32_t nextIndex() const {
    return static_cast<uint32_t>(F.Code.size());
  }

  /// Patches all pending branches.  Must be called exactly once, after all
  /// labels are bound; asserts if any label was used but never bound.
  void finish();

private:
  Function &F;
  static constexpr uint32_t kUnbound = ~0u;
  std::vector<uint32_t> LabelTargets;
  /// (instruction index, label index) pairs awaiting resolution.
  std::vector<std::pair<uint32_t, uint32_t>> Pending;
  bool Finished = false;
};

} // namespace jumpstart::bc

#endif // JUMPSTART_BYTECODE_FUNCBUILDER_H
