//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A function in the bytecode repo.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_BYTECODE_FUNCTION_H
#define JUMPSTART_BYTECODE_FUNCTION_H

#include "bytecode/Ids.h"
#include "bytecode/Instruction.h"

#include <string>
#include <vector>

namespace jumpstart::bc {

/// A function (or method) compiled offline into the repo.
///
/// Parameters occupy the first NumParams local slots; the frame has
/// NumLocals locals in total.  Bytecode branch targets are indices into
/// Code.
struct Function {
  FuncId Id;
  std::string Name;
  UnitId Unit;
  /// Owning class when this is a method; invalid for free functions.
  ClassId Cls;
  uint32_t NumParams = 0;
  uint32_t NumLocals = 0;
  std::vector<Instr> Code;

  bool isMethod() const { return Cls.valid(); }

  /// Number of bytecode instructions.
  size_t size() const { return Code.size(); }
};

} // namespace jumpstart::bc

#endif // JUMPSTART_BYTECODE_FUNCTION_H
