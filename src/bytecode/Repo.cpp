//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "bytecode/Repo.h"

#include "support/Assert.h"

#include <algorithm>

using namespace jumpstart;
using namespace jumpstart::bc;

StringId Repo::internString(std::string_view S) {
  auto It = StringIndex.find(std::string(S));
  if (It != StringIndex.end())
    return StringId(It->second);
  uint32_t Id = static_cast<uint32_t>(Strings.size());
  Strings.emplace_back(S);
  StringIndex.emplace(Strings.back(), Id);
  return StringId(Id);
}

Unit &Repo::createUnit(std::string_view Name) {
  Unit U;
  U.Id = UnitId(static_cast<uint32_t>(Units.size()));
  U.Name = std::string(Name);
  Units.push_back(std::move(U));
  return Units.back();
}

Function &Repo::createFunction(Unit &U, std::string_view Name) {
  Function F;
  F.Id = FuncId(static_cast<uint32_t>(Funcs.size()));
  F.Name = std::string(Name);
  F.Unit = U.Id;
  U.Funcs.push_back(F.Id);
  FuncIndex.emplace(F.Name, F.Id.raw());
  Funcs.push_back(std::move(F));
  return Funcs.back();
}

Class &Repo::createClass(Unit &U, std::string_view Name) {
  Class C;
  C.Id = ClassId(static_cast<uint32_t>(Classes.size()));
  C.Name = std::string(Name);
  C.Unit = U.Id;
  U.Classes.push_back(C.Id);
  ClassIndex.emplace(C.Name, C.Id.raw());
  Classes.push_back(std::move(C));
  return Classes.back();
}

const std::string &Repo::str(StringId Id) const {
  assert(Id.raw() < Strings.size() && "invalid StringId");
  return Strings[Id.raw()];
}

const Unit &Repo::unit(UnitId Id) const {
  assert(Id.raw() < Units.size() && "invalid UnitId");
  return Units[Id.raw()];
}

const Function &Repo::func(FuncId Id) const {
  assert(Id.raw() < Funcs.size() && "invalid FuncId");
  return Funcs[Id.raw()];
}

const Class &Repo::cls(ClassId Id) const {
  assert(Id.raw() < Classes.size() && "invalid ClassId");
  return Classes[Id.raw()];
}

Function &Repo::funcMutable(FuncId Id) {
  assert(Id.raw() < Funcs.size() && "invalid FuncId");
  return Funcs[Id.raw()];
}

Class &Repo::clsMutable(ClassId Id) {
  assert(Id.raw() < Classes.size() && "invalid ClassId");
  return Classes[Id.raw()];
}

StringId Repo::findString(std::string_view S) const {
  auto It = StringIndex.find(std::string(S));
  if (It == StringIndex.end())
    return StringId();
  return StringId(It->second);
}

FuncId Repo::findFunction(std::string_view Name) const {
  auto It = FuncIndex.find(std::string(Name));
  if (It == FuncIndex.end())
    return FuncId();
  return FuncId(It->second);
}

ClassId Repo::findClass(std::string_view Name) const {
  auto It = ClassIndex.find(std::string(Name));
  if (It == ClassIndex.end())
    return ClassId();
  return ClassId(It->second);
}

FuncId Repo::resolveMethod(ClassId C, StringId Name) const {
  while (C.valid()) {
    const Class &K = cls(C);
    FuncId M = K.findDeclMethod(Name);
    if (M.valid())
      return M;
    C = K.Parent;
  }
  return FuncId();
}

std::vector<FuncId> Repo::allMethodResolutions(StringId Name) const {
  std::vector<FuncId> Out;
  for (const Class &K : Classes) {
    FuncId M = resolveMethod(K.Id, Name);
    if (M.valid())
      Out.push_back(M);
  }
  std::sort(Out.begin(), Out.end(),
            [](FuncId A, FuncId B) { return A.raw() < B.raw(); });
  Out.erase(std::unique(Out.begin(), Out.end(),
                        [](FuncId A, FuncId B) { return A.raw() == B.raw(); }),
            Out.end());
  return Out;
}

FuncId Repo::uniqueMethodResolution(StringId Name) const {
  std::vector<FuncId> All = allMethodResolutions(Name);
  return All.size() == 1 ? All.front() : FuncId();
}

bool Repo::allClassesResolve(StringId Name) const {
  if (Classes.empty())
    return false;
  for (const Class &K : Classes)
    if (!resolveMethod(K.Id, Name).valid())
      return false;
  return true;
}

size_t Repo::totalBytecode() const {
  size_t Total = 0;
  for (const Function &F : Funcs)
    Total += F.Code.size();
  return Total;
}
