//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The untyped bytecode instruction set.
///
/// Like HHVM's HHBC, the bytecode is stack-based and untyped: every value
/// slot holds a dynamically-typed value and operations dispatch on runtime
/// types.  The set below is a compact core sufficient to express the
/// workloads the evaluation generates (arithmetic, string building,
/// containers, objects with virtual dispatch, direct and native calls).
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_BYTECODE_OPCODE_H
#define JUMPSTART_BYTECODE_OPCODE_H

#include <cstdint>

namespace jumpstart::bc {

/// Immediate operand kinds.  Each opcode has zero, one or two immediates;
/// their kinds determine how tools (verifier, disassembler) interpret the
/// raw 64-bit immediate slots.
enum class ImmKind : uint8_t {
  None,    ///< No immediate in this slot.
  I64,     ///< A literal signed integer.
  DblBits, ///< IEEE double carried as raw bits.
  Str,     ///< A StringId into the repo string table.
  Local,   ///< A local-variable index within the frame.
  Target,  ///< A branch target (instruction index in this function).
  Func,    ///< A FuncId (direct call target).
  Cls,     ///< A ClassId.
  Builtin, ///< A builtin-function ordinal.
  Count,   ///< A count (argument count, element count).
};

// X-macro: name, immediate kind A, immediate kind B, pops, pushes, flags.
// Pops of -1 mean "variable; determined by a Count immediate" (calls pop
// NumArgs plus any fixed inputs accounted for in the interpreter).
#define JUMPSTART_OPCODES(X)                                                   \
  /*      name        immA              immB          pop push */              \
  X(Nop, ImmKind::None, ImmKind::None, 0, 0, OpFlags::None)                    \
  X(Int, ImmKind::I64, ImmKind::None, 0, 1, OpFlags::None)                     \
  X(Dbl, ImmKind::DblBits, ImmKind::None, 0, 1, OpFlags::None)                 \
  X(True, ImmKind::None, ImmKind::None, 0, 1, OpFlags::None)                   \
  X(False, ImmKind::None, ImmKind::None, 0, 1, OpFlags::None)                  \
  X(Null, ImmKind::None, ImmKind::None, 0, 1, OpFlags::None)                   \
  X(Str, ImmKind::Str, ImmKind::None, 0, 1, OpFlags::None)                     \
  X(NewVec, ImmKind::None, ImmKind::None, 0, 1, OpFlags::None)                 \
  X(NewDict, ImmKind::None, ImmKind::None, 0, 1, OpFlags::None)                \
  X(AddElem, ImmKind::None, ImmKind::None, 2, 1, OpFlags::None)                \
  X(AddKeyElem, ImmKind::None, ImmKind::None, 3, 1, OpFlags::None)             \
  X(GetElem, ImmKind::None, ImmKind::None, 2, 1, OpFlags::LoadsData)           \
  X(SetElem, ImmKind::None, ImmKind::None, 3, 1, OpFlags::StoresData)          \
  X(Len, ImmKind::None, ImmKind::None, 1, 1, OpFlags::None)                    \
  X(PopC, ImmKind::None, ImmKind::None, 1, 0, OpFlags::None)                   \
  X(Dup, ImmKind::None, ImmKind::None, 1, 2, OpFlags::None)                    \
  X(GetL, ImmKind::Local, ImmKind::None, 0, 1, OpFlags::None)                  \
  X(SetL, ImmKind::Local, ImmKind::None, 1, 0, OpFlags::None)                  \
  X(Add, ImmKind::None, ImmKind::None, 2, 1, OpFlags::None)                    \
  X(Sub, ImmKind::None, ImmKind::None, 2, 1, OpFlags::None)                    \
  X(Mul, ImmKind::None, ImmKind::None, 2, 1, OpFlags::None)                    \
  X(Div, ImmKind::None, ImmKind::None, 2, 1, OpFlags::None)                    \
  X(Mod, ImmKind::None, ImmKind::None, 2, 1, OpFlags::None)                    \
  X(Concat, ImmKind::None, ImmKind::None, 2, 1, OpFlags::None)                 \
  X(Not, ImmKind::None, ImmKind::None, 1, 1, OpFlags::None)                    \
  X(CmpEq, ImmKind::None, ImmKind::None, 2, 1, OpFlags::None)                  \
  X(CmpNe, ImmKind::None, ImmKind::None, 2, 1, OpFlags::None)                  \
  X(CmpLt, ImmKind::None, ImmKind::None, 2, 1, OpFlags::None)                  \
  X(CmpLe, ImmKind::None, ImmKind::None, 2, 1, OpFlags::None)                  \
  X(CmpGt, ImmKind::None, ImmKind::None, 2, 1, OpFlags::None)                  \
  X(CmpGe, ImmKind::None, ImmKind::None, 2, 1, OpFlags::None)                  \
  X(Jmp, ImmKind::Target, ImmKind::None, 0, 0, OpFlags::Branch)                \
  X(JmpZ, ImmKind::Target, ImmKind::None, 1, 0, OpFlags::CondBranch)           \
  X(JmpNZ, ImmKind::Target, ImmKind::None, 1, 0, OpFlags::CondBranch)          \
  X(FCall, ImmKind::Func, ImmKind::Count, -1, 1, OpFlags::Call)                \
  X(FCallObj, ImmKind::Str, ImmKind::Count, -1, 1, OpFlags::Call)              \
  X(NativeCall, ImmKind::Builtin, ImmKind::Count, -1, 1, OpFlags::Call)        \
  X(NewObj, ImmKind::Cls, ImmKind::None, 0, 1, OpFlags::None)                  \
  X(GetProp, ImmKind::Str, ImmKind::None, 1, 1, OpFlags::LoadsData)            \
  X(SetProp, ImmKind::Str, ImmKind::None, 2, 0, OpFlags::StoresData)           \
  X(GetThis, ImmKind::None, ImmKind::None, 0, 1, OpFlags::None)                \
  X(RetC, ImmKind::None, ImmKind::None, 1, 0, OpFlags::Terminal)

/// Behavioural flags per opcode, used by block construction, the verifier
/// and the JIT lowering.
enum class OpFlags : uint8_t {
  None = 0,
  Branch = 1 << 0,     ///< Unconditional branch; ends a basic block.
  CondBranch = 1 << 1, ///< Conditional branch; ends a basic block.
  Terminal = 1 << 2,   ///< Ends the function (return); ends a basic block.
  Call = 1 << 3,       ///< Transfers to another function and returns.
  LoadsData = 1 << 4,  ///< Reads heap data (drives D-cache simulation).
  StoresData = 1 << 5, ///< Writes heap data (drives D-cache simulation).
};

inline OpFlags operator|(OpFlags A, OpFlags B) {
  return static_cast<OpFlags>(static_cast<uint8_t>(A) |
                              static_cast<uint8_t>(B));
}

inline bool hasFlag(OpFlags Flags, OpFlags Bit) {
  return (static_cast<uint8_t>(Flags) & static_cast<uint8_t>(Bit)) != 0;
}

enum class Op : uint8_t {
#define JUMPSTART_OP_ENUM(Name, ImmA, ImmB, Pop, Push, Flags) Name,
  JUMPSTART_OPCODES(JUMPSTART_OP_ENUM)
#undef JUMPSTART_OP_ENUM
};

/// Maximum value of a Count immediate (call arity, element count).
constexpr unsigned kMaxCallArgs = 64;

/// Total number of opcodes.
constexpr unsigned kNumOpcodes = 0
#define JUMPSTART_OP_COUNT(Name, ImmA, ImmB, Pop, Push, Flags) +1
    JUMPSTART_OPCODES(JUMPSTART_OP_COUNT)
#undef JUMPSTART_OP_COUNT
    ;

/// Static metadata describing one opcode.
struct OpInfo {
  const char *Name;
  ImmKind ImmA;
  ImmKind ImmB;
  int8_t Pop;  ///< -1 means variable (calls).
  int8_t Push;
  OpFlags Flags;
};

/// \returns the metadata for \p O.
const OpInfo &opInfo(Op O);

/// \returns the printable mnemonic for \p O.
inline const char *opName(Op O) { return opInfo(O).Name; }

/// \returns true if \p O ends a basic block.
inline bool opEndsBlock(Op O) {
  OpFlags F = opInfo(O).Flags;
  return hasFlag(F, OpFlags::Branch) || hasFlag(F, OpFlags::CondBranch) ||
         hasFlag(F, OpFlags::Terminal);
}

struct Instr;

/// Number of operand-stack values popped by \p In, taking variable-arity
/// calls into account (FCall/NativeCall pop NumArgs; FCallObj also pops
/// the receiver).  Shared by the verifier's dataflow pass and the
/// interpreter's static frame-size analysis.
int instrStackPops(const Instr &In);

/// Net operand-stack effect of \p In (pushes minus pops).
int instrStackDelta(const Instr &In);

} // namespace jumpstart::bc

#endif // JUMPSTART_BYTECODE_OPCODE_H
