//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decoded in-memory form of one bytecode instruction.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_BYTECODE_INSTRUCTION_H
#define JUMPSTART_BYTECODE_INSTRUCTION_H

#include "bytecode/Ids.h"
#include "bytecode/Opcode.h"

#include <cstdint>

namespace jumpstart::bc {

/// One bytecode instruction: an opcode plus up to two raw immediates.
/// Branch targets are instruction indices within the owning function.
struct Instr {
  Op Opcode = Op::Nop;
  int64_t ImmA = 0;
  int64_t ImmB = 0;

  Instr() = default;
  Instr(Op O) : Opcode(O) {}
  Instr(Op O, int64_t A) : Opcode(O), ImmA(A) {}
  Instr(Op O, int64_t A, int64_t B) : Opcode(O), ImmA(A), ImmB(B) {}

  StringId strImm() const { return StringId(static_cast<uint32_t>(ImmA)); }
  FuncId funcImm() const { return FuncId(static_cast<uint32_t>(ImmA)); }
  ClassId clsImm() const { return ClassId(static_cast<uint32_t>(ImmA)); }
  uint32_t localImm() const { return static_cast<uint32_t>(ImmA); }
  uint32_t targetImm() const { return static_cast<uint32_t>(ImmA); }
  uint32_t countImm() const { return static_cast<uint32_t>(ImmB); }
  uint32_t builtinImm() const { return static_cast<uint32_t>(ImmA); }
};

} // namespace jumpstart::bc

#endif // JUMPSTART_BYTECODE_INSTRUCTION_H
