//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "bytecode/Blocks.h"

#include "support/Assert.h"

#include <algorithm>

using namespace jumpstart;
using namespace jumpstart::bc;

BlockList BlockList::compute(const Function &F) {
  BlockList Result;
  if (F.Code.empty())
    return Result;

  // Pass 1: find leaders (entry, branch targets, instructions after
  // block-enders).
  std::vector<uint32_t> Leaders;
  Leaders.push_back(0);
  for (uint32_t I = 0; I < F.Code.size(); ++I) {
    const Instr &In = F.Code[I];
    const OpInfo &Info = opInfo(In.Opcode);
    if (hasFlag(Info.Flags, OpFlags::Branch) ||
        hasFlag(Info.Flags, OpFlags::CondBranch)) {
      alwaysAssert(In.targetImm() < F.Code.size(),
                   "branch target out of range in block computation");
      Leaders.push_back(In.targetImm());
    }
    if (opEndsBlock(In.Opcode) && I + 1 < F.Code.size())
      Leaders.push_back(I + 1);
  }
  std::sort(Leaders.begin(), Leaders.end());
  Leaders.erase(std::unique(Leaders.begin(), Leaders.end()), Leaders.end());

  // Pass 2: build blocks from consecutive leaders.
  Result.InstrToBlock.resize(F.Code.size());
  for (size_t L = 0; L < Leaders.size(); ++L) {
    BcBlock B;
    B.Start = Leaders[L];
    B.End = (L + 1 < Leaders.size()) ? Leaders[L + 1]
                                     : static_cast<uint32_t>(F.Code.size());
    for (uint32_t I = B.Start; I < B.End; ++I)
      Result.InstrToBlock[I] = static_cast<uint32_t>(L);
    Result.Blocks.push_back(B);
  }

  // Pass 3: wire successors.
  for (size_t L = 0; L < Result.Blocks.size(); ++L) {
    BcBlock &B = Result.Blocks[L];
    const Instr &Last = F.Code[B.End - 1];
    const OpInfo &Info = opInfo(Last.Opcode);
    if (hasFlag(Info.Flags, OpFlags::Terminal))
      continue;
    if (hasFlag(Info.Flags, OpFlags::Branch)) {
      B.Taken = Result.InstrToBlock[Last.targetImm()];
      continue;
    }
    if (hasFlag(Info.Flags, OpFlags::CondBranch)) {
      B.Taken = Result.InstrToBlock[Last.targetImm()];
      if (B.End < F.Code.size())
        B.Fallthru = static_cast<uint32_t>(L + 1);
      continue;
    }
    // Plain fallthrough into the next block.
    if (B.End < F.Code.size())
      B.Fallthru = static_cast<uint32_t>(L + 1);
  }
  return Result;
}
