//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "bytecode/Disasm.h"

#include "bytecode/Blocks.h"
#include "support/Assert.h"
#include "support/StringUtil.h"

#include <cstring>

using namespace jumpstart;
using namespace jumpstart::bc;

static std::string renderImm(const Repo &R, ImmKind Kind, int64_t Raw) {
  switch (Kind) {
  case ImmKind::None:
    return std::string();
  case ImmKind::I64:
  case ImmKind::Count:
    return strFormat("%lld", static_cast<long long>(Raw));
  case ImmKind::DblBits: {
    double D;
    std::memcpy(&D, &Raw, sizeof(D));
    return strFormat("%g", D);
  }
  case ImmKind::Str: {
    uint64_t Id = static_cast<uint64_t>(Raw);
    if (Id < R.numStrings())
      return strFormat("\"%s\"", R.str(StringId(Id)).c_str());
    return strFormat("str#%llu!", static_cast<unsigned long long>(Id));
  }
  case ImmKind::Local:
    return strFormat("L%lld", static_cast<long long>(Raw));
  case ImmKind::Target:
    return strFormat("->%lld", static_cast<long long>(Raw));
  case ImmKind::Func: {
    uint64_t Id = static_cast<uint64_t>(Raw);
    if (Id < R.numFuncs())
      return R.func(FuncId(Id)).Name;
    return strFormat("func#%llu!", static_cast<unsigned long long>(Id));
  }
  case ImmKind::Cls: {
    uint64_t Id = static_cast<uint64_t>(Raw);
    if (Id < R.numClasses())
      return R.cls(ClassId(Id)).Name;
    return strFormat("class#%llu!", static_cast<unsigned long long>(Id));
  }
  case ImmKind::Builtin:
    return strFormat("builtin#%lld", static_cast<long long>(Raw));
  }
  unreachable("unhandled ImmKind");
}

std::string jumpstart::bc::disasmInstr(const Repo &R, const Instr &In) {
  const OpInfo &Info = opInfo(In.Opcode);
  std::string Result = Info.Name;
  std::string A = renderImm(R, Info.ImmA, In.ImmA);
  std::string B = renderImm(R, Info.ImmB, In.ImmB);
  if (!A.empty())
    Result += " " + A;
  if (!B.empty())
    Result += ", " + B;
  return Result;
}

std::string jumpstart::bc::disasmFunction(const Repo &R, const Function &F) {
  std::string Result =
      strFormat(".function %s (params=%u locals=%u)\n", F.Name.c_str(),
                F.NumParams, F.NumLocals);
  BlockList Blocks = BlockList::compute(F);
  uint32_t NextBlock = 0;
  for (uint32_t I = 0; I < F.Code.size(); ++I) {
    if (NextBlock < Blocks.numBlocks() && Blocks.block(NextBlock).Start == I) {
      Result += strFormat("B%u:\n", NextBlock);
      ++NextBlock;
    }
    Result += strFormat("  %4u  %s\n", I, disasmInstr(R, F.Code[I]).c_str());
  }
  return Result;
}
