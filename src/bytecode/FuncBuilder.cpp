//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "bytecode/FuncBuilder.h"

#include "support/Assert.h"

using namespace jumpstart;
using namespace jumpstart::bc;

FuncBuilder::Label FuncBuilder::newLabel() {
  uint32_t Index = static_cast<uint32_t>(LabelTargets.size());
  LabelTargets.push_back(kUnbound);
  return Label{Index};
}

void FuncBuilder::bind(Label L) {
  assert(L.Index < LabelTargets.size() && "bind() of unknown label");
  assert(LabelTargets[L.Index] == kUnbound && "label bound twice");
  LabelTargets[L.Index] = nextIndex();
}

void FuncBuilder::emit(Op O, int64_t ImmA, int64_t ImmB) {
  assert(!Finished && "emit() after finish()");
  F.Code.emplace_back(O, ImmA, ImmB);
}

void FuncBuilder::emitJump(Op O, Label L) {
  assert(opEndsBlock(O) && !hasFlag(opInfo(O).Flags, OpFlags::Terminal) &&
         "emitJump() requires a branch opcode");
  uint32_t At = nextIndex();
  emit(O, /*ImmA=*/0);
  Pending.emplace_back(At, L.Index);
}

uint32_t FuncBuilder::newLocal() { return F.NumLocals++; }

void FuncBuilder::finish() {
  assert(!Finished && "finish() called twice");
  Finished = true;
  for (auto [InstrIndex, LabelIndex] : Pending) {
    uint32_t Target = LabelTargets[LabelIndex];
    alwaysAssert(Target != kUnbound, "branch to a label that was never bound");
    F.Code[InstrIndex].ImmA = Target;
  }
  Pending.clear();
}
