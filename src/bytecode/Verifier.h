//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bytecode verifier.
///
/// Runs after offline compilation (and in tests over hand-assembled code)
/// to guarantee the structural invariants the interpreter and JIT rely on:
/// in-range immediates, no fallthrough off the end of a function, and a
/// consistent operand-stack depth at every block boundary.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_BYTECODE_VERIFIER_H
#define JUMPSTART_BYTECODE_VERIFIER_H

#include "bytecode/Repo.h"

#include <string>
#include <vector>

namespace jumpstart::bc {

/// One structural-verification finding, with the instruction it anchors
/// to when one exists (kNoInstr for whole-function problems).  The
/// analysis linter consumes these as its pass zero and re-renders them in
/// its uniform diagnostic format; verifyFunction() below flattens them to
/// the historical string form.
struct VerifyIssue {
  static constexpr uint32_t kNoInstr = ~0u;
  uint32_t Instr = kNoInstr;
  std::string Message;
};

/// Verifies a single function against \p R, producing structured issues.
/// \p NumBuiltins bounds the NativeCall immediates.  Empty means the
/// function verified.
std::vector<VerifyIssue> verifyFunctionIssues(const Repo &R,
                                              const Function &F,
                                              uint32_t NumBuiltins);

/// Verifies a single function against \p R.  \p NumBuiltins bounds the
/// NativeCall immediates.  \returns human-readable error strings; empty
/// means the function verified.
std::vector<std::string> verifyFunction(const Repo &R, const Function &F,
                                        uint32_t NumBuiltins);

/// Verifies every function in the repo.  \returns all errors found.
std::vector<std::string> verifyRepo(const Repo &R, uint32_t NumBuiltins);

} // namespace jumpstart::bc

#endif // JUMPSTART_BYTECODE_VERIFIER_H
