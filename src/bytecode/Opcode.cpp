//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "bytecode/Opcode.h"

#include "bytecode/Instruction.h"
#include "support/Assert.h"

using namespace jumpstart;
using namespace jumpstart::bc;

static const OpInfo OpTable[kNumOpcodes] = {
#define JUMPSTART_OP_INFO(Name, ImmA, ImmB, Pop, Push, Flags)                  \
  {#Name, ImmA, ImmB, Pop, Push, Flags},
    JUMPSTART_OPCODES(JUMPSTART_OP_INFO)
#undef JUMPSTART_OP_INFO
};

const OpInfo &jumpstart::bc::opInfo(Op O) {
  unsigned Index = static_cast<unsigned>(O);
  assert(Index < kNumOpcodes && "invalid opcode");
  return OpTable[Index];
}

int jumpstart::bc::instrStackPops(const Instr &In) {
  const OpInfo &Info = opInfo(In.Opcode);
  if (Info.Pop >= 0)
    return Info.Pop;
  int Pops = static_cast<int>(In.countImm());
  if (In.Opcode == Op::FCallObj)
    ++Pops;
  return Pops;
}

int jumpstart::bc::instrStackDelta(const Instr &In) {
  return opInfo(In.Opcode).Push - instrStackPops(In);
}
