//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bytecode disassembler, for debugging and for the jit_debugging example
/// (paper section III reason 4: replaying serialized profiles to debug the
/// JIT requires inspectable bytecode and profile dumps).
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_BYTECODE_DISASM_H
#define JUMPSTART_BYTECODE_DISASM_H

#include "bytecode/Repo.h"

#include <string>

namespace jumpstart::bc {

/// Renders one instruction as "Opcode imm, imm" with symbolic immediates.
std::string disasmInstr(const Repo &R, const Instr &In);

/// Renders a whole function, one instruction per line with indices and
/// basic-block boundaries marked.
std::string disasmFunction(const Repo &R, const Function &F);

} // namespace jumpstart::bc

#endif // JUMPSTART_BYTECODE_DISASM_H
