//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A class declaration in the bytecode repo.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_BYTECODE_CLASS_H
#define JUMPSTART_BYTECODE_CLASS_H

#include "bytecode/Ids.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace jumpstart::bc {

/// A class as declared in source: its own (non-inherited) properties in
/// declared order, and its own methods.  Inherited members are resolved at
/// runtime by runtime::ClassLayout, which is also where Jump-Start's
/// property-reordering optimization acts (paper section V-C); the repo
/// always preserves the declared order, which is observable in the source
/// language.
struct Class {
  ClassId Id;
  std::string Name;
  UnitId Unit;
  /// Parent class, or invalid for a root class.
  ClassId Parent;
  /// Non-inherited properties in declared order.
  std::vector<StringId> DeclProps;
  /// Non-inherited methods by name.
  std::unordered_map<uint32_t, FuncId> Methods;

  /// Finds a method declared directly on this class (no inheritance walk);
  /// \returns an invalid FuncId when absent.
  FuncId findDeclMethod(StringId Name) const {
    auto It = Methods.find(Name.raw());
    if (It == Methods.end())
      return FuncId();
    return It->second;
  }
};

} // namespace jumpstart::bc

#endif // JUMPSTART_BYTECODE_CLASS_H
