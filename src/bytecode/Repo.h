//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode repository: the output of offline compilation.
///
/// Like HHVM's repo-authoritative mode, all source code is compiled ahead
/// of deployment into a single immutable repository holding interned
/// literal strings, units, classes and functions.  At runtime, servers
/// share one const Repo; per-server mutable state (loaded-unit tracking,
/// runtime class layouts, JIT state) lives elsewhere.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_BYTECODE_REPO_H
#define JUMPSTART_BYTECODE_REPO_H

#include "bytecode/Class.h"
#include "bytecode/Function.h"
#include "bytecode/Unit.h"

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace jumpstart::bc {

/// The immutable program image produced by offline compilation.
class Repo {
public:
  //===--------------------------------------------------------------------===
  // Construction (used by the frontend's codegen).
  //===--------------------------------------------------------------------===

  /// Interns \p S, returning its id; repeated calls return the same id.
  StringId internString(std::string_view S);

  /// Creates an empty unit named \p Name and returns it.
  Unit &createUnit(std::string_view Name);

  /// Creates a function in \p U; the function's Unit field and Id are
  /// filled in.
  Function &createFunction(Unit &U, std::string_view Name);

  /// Creates a class in \p U.
  Class &createClass(Unit &U, std::string_view Name);

  //===--------------------------------------------------------------------===
  // Lookup.
  //===--------------------------------------------------------------------===

  const std::string &str(StringId Id) const;
  const Unit &unit(UnitId Id) const;
  const Function &func(FuncId Id) const;
  const Class &cls(ClassId Id) const;

  /// Mutable access for the frontend while a unit is under construction.
  Function &funcMutable(FuncId Id);
  Class &clsMutable(ClassId Id);

  /// Looks up an interned string; \returns an invalid id when absent.
  StringId findString(std::string_view S) const;

  /// Looks up a free function by name; \returns an invalid id when absent.
  FuncId findFunction(std::string_view Name) const;

  /// Looks up a class by name; \returns an invalid id when absent.
  ClassId findClass(std::string_view Name) const;

  /// Resolves a method named \p Name on \p C, walking up the inheritance
  /// chain; \returns an invalid id when no ancestor declares it.
  FuncId resolveMethod(ClassId C, StringId Name) const;

  //===--------------------------------------------------------------------===
  // Whole-program method resolution (class-hierarchy analysis).
  //===--------------------------------------------------------------------===

  /// Every distinct function some class of the repo resolves \p Name to
  /// (deduplicated, ascending FuncId order).  Classes that do not resolve
  /// \p Name contribute nothing.
  std::vector<FuncId> allMethodResolutions(StringId Name) const;

  /// The single function every class that resolves \p Name resolves it
  /// to; invalid when zero or more than one distinct target exists.
  FuncId uniqueMethodResolution(StringId Name) const;

  /// True when *every* class of the repo resolves \p Name (so a method
  /// call on any object receiver cannot take the missing-method fault
  /// path).  False for a repo with no classes.
  bool allClassesResolve(StringId Name) const;

  size_t numStrings() const { return Strings.size(); }
  size_t numUnits() const { return Units.size(); }
  size_t numFuncs() const { return Funcs.size(); }
  size_t numClasses() const { return Classes.size(); }

  const std::vector<Function> &funcs() const { return Funcs; }
  const std::vector<Class> &classes() const { return Classes; }
  const std::vector<Unit> &units() const { return Units; }

  /// Total bytecode instructions across all functions (a proxy for the
  /// "100 million lines of code" scale axis in the paper).
  size_t totalBytecode() const;

private:
  std::vector<std::string> Strings;
  std::unordered_map<std::string, uint32_t> StringIndex;
  std::vector<Unit> Units;
  std::vector<Function> Funcs;
  std::vector<Class> Classes;
  std::unordered_map<std::string, uint32_t> FuncIndex;
  std::unordered_map<std::string, uint32_t> ClassIndex;
};

} // namespace jumpstart::bc

#endif // JUMPSTART_BYTECODE_REPO_H
