//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "bytecode/Verifier.h"

#include "bytecode/Blocks.h"
#include "support/StringUtil.h"

#include <deque>

using namespace jumpstart;
using namespace jumpstart::bc;

namespace {

/// Collects structured issues; instruction-anchored when an index is
/// known.
class ErrorSink {
public:
  explicit ErrorSink(std::vector<VerifyIssue> &Out) : Out(Out) {}

  template <typename... Args>
  void error(uint32_t Instr, const char *Fmt, Args... Values) {
    Out.push_back(VerifyIssue{Instr, strFormat(Fmt, Values...)});
  }

  template <typename... Args> void error(const char *Fmt, Args... Values) {
    error(VerifyIssue::kNoInstr, Fmt, Values...);
  }

  bool hadError() const { return !Out.empty(); }

private:
  std::vector<VerifyIssue> &Out;
};

void verifyImmediates(const Repo &R, const Function &F, uint32_t NumBuiltins,
                      ErrorSink &Sink) {
  auto CheckImm = [&](uint32_t Index, ImmKind Kind, int64_t Raw) {
    switch (Kind) {
    case ImmKind::None:
    case ImmKind::I64:
    case ImmKind::DblBits:
      return;
    case ImmKind::Str:
      if (static_cast<uint64_t>(Raw) >= R.numStrings())
        Sink.error(Index, "instr %u: string id %lld out of range", Index,
                   static_cast<long long>(Raw));
      return;
    case ImmKind::Local:
      if (static_cast<uint64_t>(Raw) >= F.NumLocals)
        Sink.error(Index, "instr %u: local %lld out of range (frame has %u)",
                   Index, static_cast<long long>(Raw), F.NumLocals);
      return;
    case ImmKind::Target:
      if (static_cast<uint64_t>(Raw) >= F.Code.size())
        Sink.error(Index, "instr %u: branch target %lld out of range", Index,
                   static_cast<long long>(Raw));
      return;
    case ImmKind::Func:
      if (static_cast<uint64_t>(Raw) >= R.numFuncs())
        Sink.error(Index, "instr %u: func id %lld out of range", Index,
                   static_cast<long long>(Raw));
      return;
    case ImmKind::Cls:
      if (static_cast<uint64_t>(Raw) >= R.numClasses())
        Sink.error(Index, "instr %u: class id %lld out of range", Index,
                   static_cast<long long>(Raw));
      return;
    case ImmKind::Builtin:
      if (static_cast<uint64_t>(Raw) >= NumBuiltins)
        Sink.error(Index, "instr %u: builtin id %lld out of range", Index,
                   static_cast<long long>(Raw));
      return;
    case ImmKind::Count:
      if (Raw < 0 || Raw > kMaxCallArgs)
        Sink.error(Index, "instr %u: implausible count %lld", Index,
                   static_cast<long long>(Raw));
      return;
    }
  };

  for (uint32_t I = 0; I < F.Code.size(); ++I) {
    const Instr &In = F.Code[I];
    const OpInfo &Info = opInfo(In.Opcode);
    CheckImm(I, Info.ImmA, In.ImmA);
    CheckImm(I, Info.ImmB, In.ImmB);
    // A call's argument count can never exceed the current stack depth;
    // that is covered by the dataflow pass below.  Direct calls must also
    // match the callee's declared parameter count.
    if (In.Opcode == Op::FCall &&
        static_cast<uint64_t>(In.ImmA) < R.numFuncs()) {
      const Function &Callee = R.func(In.funcImm());
      if (In.countImm() != Callee.NumParams)
        Sink.error(I, "instr %u: call to %s passes %u args, expects %u", I,
                   Callee.Name.c_str(), In.countImm(), Callee.NumParams);
    }
  }
}

/// Abstract interpretation of operand-stack depth over the CFG: every
/// block must be entered at one consistent depth, depth can never go
/// negative, and returns must leave a clean stack.
void verifyStackDepth(const Function &F, ErrorSink &Sink) {
  BlockList Blocks = BlockList::compute(F);
  constexpr int kUnknown = -1;
  std::vector<int> EntryDepth(Blocks.numBlocks(), kUnknown);
  EntryDepth[0] = 0;
  std::deque<uint32_t> Worklist;
  Worklist.push_back(0);

  while (!Worklist.empty()) {
    uint32_t BlockId = Worklist.front();
    Worklist.pop_front();
    const BcBlock &B = Blocks.block(BlockId);
    int Depth = EntryDepth[BlockId];
    for (uint32_t I = B.Start; I < B.End; ++I) {
      const Instr &In = F.Code[I];
      if (Depth < instrStackPops(In)) {
        Sink.error(I, "instr %u (%s): stack underflow (depth %d)", I,
                   opName(In.Opcode), Depth);
        return;
      }
      Depth += instrStackDelta(In);
      if (In.Opcode == Op::RetC && Depth != 0) {
        Sink.error(I, "instr %u: return leaves %d values on the stack", I,
                   Depth);
        return;
      }
    }
    auto Propagate = [&](uint32_t Succ) {
      if (EntryDepth[Succ] == kUnknown) {
        EntryDepth[Succ] = Depth;
        Worklist.push_back(Succ);
      } else if (EntryDepth[Succ] != Depth) {
        Sink.error(Blocks.block(Succ).Start,
                   "block %u entered at inconsistent depths (%d vs %d)", Succ,
                   EntryDepth[Succ], Depth);
      }
    };
    if (B.hasTaken())
      Propagate(B.Taken);
    if (B.hasFallthru())
      Propagate(B.Fallthru);
  }
}

} // namespace

std::vector<VerifyIssue>
jumpstart::bc::verifyFunctionIssues(const Repo &R, const Function &F,
                                    uint32_t NumBuiltins) {
  std::vector<VerifyIssue> Issues;
  ErrorSink Sink(Issues);

  if (F.Code.empty()) {
    Sink.error("function has no bytecode");
    return Issues;
  }
  if (F.NumParams > F.NumLocals) {
    Sink.error("%u params exceed %u locals", F.NumParams, F.NumLocals);
    return Issues;
  }
  const Instr &Last = F.Code.back();
  const OpInfo &LastInfo = opInfo(Last.Opcode);
  if (!hasFlag(LastInfo.Flags, OpFlags::Terminal) &&
      !hasFlag(LastInfo.Flags, OpFlags::Branch)) {
    Sink.error("control can fall off the end of the function");
    return Issues;
  }

  verifyImmediates(R, F, NumBuiltins, Sink);
  if (!Sink.hadError())
    verifyStackDepth(F, Sink);
  return Issues;
}

std::vector<std::string> jumpstart::bc::verifyFunction(const Repo &R,
                                                       const Function &F,
                                                       uint32_t NumBuiltins) {
  std::vector<std::string> Errors;
  for (const VerifyIssue &Issue : verifyFunctionIssues(R, F, NumBuiltins))
    Errors.push_back(
        strFormat("%s: %s", F.Name.c_str(), Issue.Message.c_str()));
  return Errors;
}

std::vector<std::string> jumpstart::bc::verifyRepo(const Repo &R,
                                                   uint32_t NumBuiltins) {
  std::vector<std::string> Errors;
  for (const Function &F : R.funcs()) {
    std::vector<std::string> FuncErrors = verifyFunction(R, F, NumBuiltins);
    Errors.insert(Errors.end(), FuncErrors.begin(), FuncErrors.end());
  }
  return Errors;
}
