//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strongly-typed identifiers for entities in the bytecode repo.
///
/// Following HHVM, the offline compiler assigns every literal string, unit,
/// class and function a dense integer id; all cross-references in bytecode
/// immediates and in the Jump-Start profile package use these ids.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_BYTECODE_IDS_H
#define JUMPSTART_BYTECODE_IDS_H

#include <cstdint>
#include <functional>

namespace jumpstart::bc {

/// A dense id with a distinct tag type per entity kind, so a FuncId cannot
/// be passed where a ClassId is expected.
template <typename Tag> struct DenseId {
  uint32_t Value = kInvalid;

  static constexpr uint32_t kInvalid = ~0u;

  DenseId() = default;
  explicit DenseId(uint32_t V) : Value(V) {}

  bool valid() const { return Value != kInvalid; }
  uint32_t raw() const { return Value; }

  friend bool operator==(DenseId A, DenseId B) { return A.Value == B.Value; }
  friend bool operator!=(DenseId A, DenseId B) { return A.Value != B.Value; }
  friend bool operator<(DenseId A, DenseId B) { return A.Value < B.Value; }
};

struct StringIdTag {};
struct UnitIdTag {};
struct FuncIdTag {};
struct ClassIdTag {};

/// Id of an interned literal string in the repo's string table.
using StringId = DenseId<StringIdTag>;
/// Id of a compilation unit (one source file).
using UnitId = DenseId<UnitIdTag>;
/// Id of a function or method.
using FuncId = DenseId<FuncIdTag>;
/// Id of a class.
using ClassId = DenseId<ClassIdTag>;

} // namespace jumpstart::bc

namespace std {
template <typename Tag> struct hash<jumpstart::bc::DenseId<Tag>> {
  size_t operator()(jumpstart::bc::DenseId<Tag> Id) const {
    return std::hash<uint32_t>()(Id.raw());
  }
};
} // namespace std

#endif // JUMPSTART_BYTECODE_IDS_H
