//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lazily-built, memoized basic-block information per function, shared by
/// the interpreter (block-entry profiling) and the JIT (region selection).
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_BYTECODE_BLOCKCACHE_H
#define JUMPSTART_BYTECODE_BLOCKCACHE_H

#include "bytecode/Blocks.h"
#include "bytecode/Repo.h"

#include <memory>
#include <vector>

namespace jumpstart::bc {

/// Caches BlockList per FuncId.  Not thread-safe; each simulated server
/// owns its VM state and the simulators are single-threaded.
class BlockCache {
public:
  explicit BlockCache(const Repo &R) : R(R) {}

  const BlockList &blocks(FuncId F) {
    if (Cache.size() < R.numFuncs())
      Cache.resize(R.numFuncs());
    auto &Slot = Cache[F.raw()];
    if (!Slot)
      Slot = std::make_unique<BlockList>(BlockList::compute(R.func(F)));
    return *Slot;
  }

  /// Precomputed Pc -> block-id table for \p F (see
  /// BlockList::instrToBlockData).
  const uint32_t *pcToBlock(FuncId F) { return blocks(F).instrToBlockData(); }

private:
  const Repo &R;
  std::vector<std::unique_ptr<BlockList>> Cache;
};

} // namespace jumpstart::bc

#endif // JUMPSTART_BYTECODE_BLOCKCACHE_H
