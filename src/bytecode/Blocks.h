//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bytecode-level basic blocks.
///
/// The tier-1 JIT's instrumentation counters are inserted at bytecode-level
/// basic blocks (paper section V-A), so block identification is shared
/// infrastructure between the profiling translator, the region selector and
/// the verifier.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_BYTECODE_BLOCKS_H
#define JUMPSTART_BYTECODE_BLOCKS_H

#include "bytecode/Function.h"

#include <cstdint>
#include <vector>

namespace jumpstart::bc {

/// One bytecode basic block: the half-open instruction range [Start, End)
/// plus successor block ids.  For conditional branches, Taken is the branch
/// target's block and Fallthru the next block; unconditional branches set
/// only Taken; returns set neither.
struct BcBlock {
  uint32_t Start = 0;
  uint32_t End = 0;
  static constexpr uint32_t kNoSucc = ~0u;
  uint32_t Taken = kNoSucc;
  uint32_t Fallthru = kNoSucc;

  uint32_t size() const { return End - Start; }
  bool hasTaken() const { return Taken != kNoSucc; }
  bool hasFallthru() const { return Fallthru != kNoSucc; }
};

/// The basic blocks of one function, in bytecode order (block 0 is the
/// entry).  Also maps instruction indices back to block ids.
class BlockList {
public:
  /// Computes the basic blocks of \p F.  \p F must be verified (all
  /// branch targets in range).
  static BlockList compute(const Function &F);

  size_t numBlocks() const { return Blocks.size(); }
  const BcBlock &block(uint32_t Id) const { return Blocks[Id]; }
  const std::vector<BcBlock> &blocks() const { return Blocks; }

  /// \returns the block containing instruction \p InstrIndex.
  uint32_t blockOf(uint32_t InstrIndex) const {
    return InstrToBlock[InstrIndex];
  }

  /// Raw Pc -> block-id table (one entry per instruction).  The
  /// interpreter's dispatch loop keeps a borrowed pointer to this so
  /// block-entry profiling is a single indexed load with no indirection
  /// through the BlockList.
  const uint32_t *instrToBlockData() const { return InstrToBlock.data(); }

private:
  std::vector<BcBlock> Blocks;
  std::vector<uint32_t> InstrToBlock;
};

} // namespace jumpstart::bc

#endif // JUMPSTART_BYTECODE_BLOCKS_H
